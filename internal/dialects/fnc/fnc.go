// Package fnc provides function definition, call and return ops (MLIR's
// func dialect; named fnc because "func" is a Go keyword).
package fnc

import (
	"fmt"

	"configwall/internal/ir"
)

// Op names.
const (
	OpFunc   = "fnc.func"
	OpReturn = "fnc.return"
	OpCall   = "fnc.call"
)

func init() {
	ir.Register(ir.OpInfo{
		Name:    OpFunc,
		Traits:  []ir.Trait{ir.TraitIsolated},
		Summary: "function definition",
		Verify: func(op *ir.Op) error {
			if _, ok := op.StringAttrValue("sym_name"); !ok {
				return fmt.Errorf("missing 'sym_name' attribute")
			}
			ta, ok := op.Attr("function_type").(ir.TypeAttr)
			if !ok {
				return fmt.Errorf("missing 'function_type' attribute")
			}
			ft, ok := ta.Type.(ir.FunctionType)
			if !ok {
				return fmt.Errorf("'function_type' must be a function type")
			}
			if op.NumRegions() != 1 {
				return fmt.Errorf("needs exactly one region")
			}
			body := op.Region(0).Block()
			if body.NumArgs() != len(ft.In) {
				return fmt.Errorf("entry block has %d args, signature has %d inputs", body.NumArgs(), len(ft.In))
			}
			return nil
		},
	})
	ir.Register(ir.OpInfo{
		Name:    OpReturn,
		Traits:  []ir.Trait{ir.TraitTerminator},
		Summary: "return from function",
	})
	ir.Register(ir.OpInfo{
		Name:    OpCall,
		Summary: "call a function by symbol",
		Verify: func(op *ir.Op) error {
			if _, ok := op.Attr("callee").(ir.SymbolRefAttr); !ok {
				return fmt.Errorf("missing 'callee' symbol attribute")
			}
			return nil
		},
	})
}

// Func is a structured view over a fnc.func op.
type Func struct {
	Op *ir.Op
}

// AsFunc wraps op, or returns ok=false when op is not fnc.func.
func AsFunc(op *ir.Op) (Func, bool) {
	if op == nil || op.Name() != OpFunc {
		return Func{}, false
	}
	return Func{op}, true
}

// Name returns the function's symbol name.
func (f Func) Name() string {
	n, _ := f.Op.StringAttrValue("sym_name")
	return n
}

// Type returns the function signature.
func (f Func) Type() ir.FunctionType {
	ta := f.Op.Attr("function_type").(ir.TypeAttr)
	return ta.Type.(ir.FunctionType)
}

// Body returns the function body block.
func (f Func) Body() *ir.Block { return f.Op.Region(0).Block() }

// NewFunc builds a fnc.func with the given name and signature; the entry
// block receives one argument per input type.
func NewFunc(name string, ft ir.FunctionType) Func {
	op := ir.NewOp(OpFunc, nil, nil)
	op.SetAttr("sym_name", ir.StringAttr{Value: name})
	op.SetAttr("function_type", ir.TypeAttr{Type: ft})
	r := op.AddRegion()
	for _, t := range ft.In {
		r.Block().AddArg(t)
	}
	return Func{op}
}

// NewReturn terminates a function body.
func NewReturn(b *ir.Builder, values ...*ir.Value) *ir.Op {
	return b.Create(OpReturn, values, nil)
}

// NewCall builds a call to the named function.
func NewCall(b *ir.Builder, callee string, args []*ir.Value, results []ir.Type) *ir.Op {
	op := b.Create(OpCall, args, results)
	op.SetAttr("callee", ir.SymbolRefAttr{Symbol: callee})
	return op
}
