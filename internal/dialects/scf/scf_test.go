package scf_test

import (
	"testing"

	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
)

func setup(t testing.TB) (*ir.Module, *ir.Builder) {
	t.Helper()
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	return m, ir.AtEnd(f.Body())
}

func TestForAccessors(t *testing.T) {
	m, b := setup(t)
	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, 8, ir.Index)
	step := arith.NewConstant(b, 2, ir.Index)
	init := arith.NewConstant(b, 5, ir.I64)
	loop := scf.NewFor(b, lb, ub, step, init)
	lbld := ir.AtEnd(loop.Body())
	scf.NewYield(lbld, loop.IterArg(0))
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	if loop.LowerBound() != lb || loop.UpperBound() != ub || loop.Step() != step {
		t.Error("bound accessors wrong")
	}
	if loop.NumIterArgs() != 1 || loop.InitArg(0) != init {
		t.Error("iter arg accessors wrong")
	}
	if loop.InductionVar() != loop.Body().Arg(0) {
		t.Error("induction var accessor wrong")
	}
	if loop.Yield() == nil || loop.Yield().Name() != scf.OpYield {
		t.Error("yield accessor wrong")
	}
	if _, ok := scf.AsFor(loop.Op); !ok {
		t.Error("AsFor rejects a for")
	}
	if _, ok := scf.AsFor(init.DefiningOp()); ok {
		t.Error("AsFor accepts a constant")
	}
}

func TestAddIterArg(t *testing.T) {
	m, b := setup(t)
	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, 8, ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)
	loop := scf.NewFor(b, lb, ub, step)
	lbld := ir.AtEnd(loop.Body())
	scf.NewYield(lbld)
	fnc.NewReturn(b)

	init := arith.NewConstant(ir.Before(loop.Op), 3, ir.I64)
	arg, res := loop.AddIterArg(init, init)
	if !arg.IsBlockArg() || arg.OwnerBlock() != loop.Body() {
		t.Error("new iter arg not a body block argument")
	}
	if res.DefiningOp() != loop.Op {
		t.Error("new result not attached to the loop")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("loop invalid after AddIterArg: %v", err)
	}
}

func TestIfAccessors(t *testing.T) {
	m, b := setup(t)
	cond := arith.NewConstant(b, 1, ir.I1)
	ifOp := scf.NewIf(b, cond, ir.I64)
	tb := ir.AtEnd(ifOp.Then())
	scf.NewYield(tb, arith.NewConstant(tb, 1, ir.I64))
	eb := ir.AtEnd(ifOp.Else())
	scf.NewYield(eb, arith.NewConstant(eb, 2, ir.I64))
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if ifOp.Condition() != cond {
		t.Error("condition accessor wrong")
	}
	if ifOp.Then() == ifOp.Else() {
		t.Error("then/else must differ")
	}
}

func TestForVerifierErrors(t *testing.T) {
	t.Run("iter count mismatch", func(t *testing.T) {
		m, b := setup(t)
		lb := arith.NewConstant(b, 0, ir.Index)
		init := arith.NewConstant(b, 0, ir.I64)
		loop := scf.NewFor(b, lb, lb, lb, init)
		lbld := ir.AtEnd(loop.Body())
		scf.NewYield(lbld) // yields nothing, loop carries one value
		fnc.NewReturn(b)
		if err := ir.Verify(m); err == nil {
			t.Error("verifier accepted yield/iter-arg count mismatch")
		}
	})
	t.Run("iter type mismatch", func(t *testing.T) {
		m, b := setup(t)
		lb := arith.NewConstant(b, 0, ir.Index)
		init := arith.NewConstant(b, 0, ir.I64)
		loop := scf.NewFor(b, lb, lb, lb, init)
		// Corrupt the body arg type by adding a fresh one of wrong type.
		body := loop.Body()
		body.EraseArg(1)
		body.AddArg(ir.I32)
		lbld := ir.AtEnd(body)
		scf.NewYield(lbld, loop.InitArg(0))
		fnc.NewReturn(b)
		if err := ir.Verify(m); err == nil {
			t.Error("verifier accepted iter arg type mismatch")
		}
	})
	t.Run("if condition type", func(t *testing.T) {
		m, b := setup(t)
		notBool := arith.NewConstant(b, 1, ir.I64)
		op := ir.NewOp(scf.OpIf, []*ir.Value{notBool}, nil)
		op.AddRegion()
		op.AddRegion()
		b.Insert(op)
		tb := ir.AtEnd(op.Region(0).Block())
		scf.NewYield(tb)
		eb := ir.AtEnd(op.Region(1).Block())
		scf.NewYield(eb)
		fnc.NewReturn(b)
		if err := ir.Verify(m); err == nil {
			t.Error("verifier accepted non-i1 if condition")
		}
	})
}
