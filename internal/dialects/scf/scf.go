// Package scf provides structured control flow: counted loops with
// iteration arguments and if/else, mirroring MLIR's scf dialect. The accfg
// state-tracing and overlap passes (paper §5.3–§5.5) operate on these ops.
package scf

import (
	"fmt"

	"configwall/internal/ir"
)

// Op names.
const (
	OpFor   = "scf.for"
	OpIf    = "scf.if"
	OpYield = "scf.yield"
)

func init() {
	ir.Register(ir.OpInfo{
		Name:    OpFor,
		Summary: "counted loop with iteration arguments",
		Verify:  verifyFor,
	})
	ir.Register(ir.OpInfo{
		Name:    OpIf,
		Summary: "if/else with yielded results",
		Verify:  verifyIf,
	})
	ir.Register(ir.OpInfo{
		Name:    OpYield,
		Traits:  []ir.Trait{ir.TraitTerminator},
		Summary: "region terminator yielding values to the parent op",
	})
}

func verifyFor(op *ir.Op) error {
	if op.NumOperands() < 3 {
		return fmt.Errorf("needs lb, ub, step operands")
	}
	if op.NumRegions() != 1 {
		return fmt.Errorf("needs exactly one region")
	}
	body := op.Region(0).Block()
	nIter := op.NumOperands() - 3
	if body.NumArgs() != nIter+1 {
		return fmt.Errorf("body needs %d args (iv + %d iter args), has %d", nIter+1, nIter, body.NumArgs())
	}
	if op.NumResults() != nIter {
		return fmt.Errorf("needs %d results to match iter args, has %d", nIter, op.NumResults())
	}
	for i := 0; i < nIter; i++ {
		initT := op.Operand(3 + i).Type()
		argT := body.Arg(1 + i).Type()
		resT := op.Result(i).Type()
		if !ir.TypesEqual(initT, argT) || !ir.TypesEqual(argT, resT) {
			return fmt.Errorf("iter arg %d type mismatch: init %s, arg %s, result %s", i, initT, argT, resT)
		}
	}
	y := body.Last()
	if y != nil && y.Name() == OpYield && y.NumOperands() != nIter {
		return fmt.Errorf("yield carries %d values, loop has %d iter args", y.NumOperands(), nIter)
	}
	return nil
}

func verifyIf(op *ir.Op) error {
	if op.NumOperands() != 1 {
		return fmt.Errorf("needs exactly the condition operand")
	}
	if !ir.TypesEqual(op.Operand(0).Type(), ir.I1) {
		return fmt.Errorf("condition must be i1, got %s", op.Operand(0).Type())
	}
	if op.NumRegions() != 2 {
		return fmt.Errorf("needs then and else regions")
	}
	for ri := 0; ri < 2; ri++ {
		y := op.Region(ri).Block().Last()
		if y == nil {
			return fmt.Errorf("region %d missing yield", ri)
		}
		if y.Name() == OpYield && y.NumOperands() != op.NumResults() {
			return fmt.Errorf("region %d yields %d values, op has %d results", ri, y.NumOperands(), op.NumResults())
		}
	}
	return nil
}

// For is a structured view over an scf.for op.
type For struct {
	Op *ir.Op
}

// AsFor wraps op, or returns ok=false when op is not scf.for.
func AsFor(op *ir.Op) (For, bool) {
	if op == nil || op.Name() != OpFor {
		return For{}, false
	}
	return For{op}, true
}

// Lower bound, upper bound and step operands.
func (f For) LowerBound() *ir.Value { return f.Op.Operand(0) }

// UpperBound returns the loop upper bound operand.
func (f For) UpperBound() *ir.Value { return f.Op.Operand(1) }

// Step returns the loop step operand.
func (f For) Step() *ir.Value { return f.Op.Operand(2) }

// NumIterArgs returns the number of loop-carried values.
func (f For) NumIterArgs() int { return f.Op.NumOperands() - 3 }

// InitArg returns the i-th initial loop-carried value.
func (f For) InitArg(i int) *ir.Value { return f.Op.Operand(3 + i) }

// Body returns the loop body block.
func (f For) Body() *ir.Block { return f.Op.Region(0).Block() }

// InductionVar returns the loop induction variable block argument.
func (f For) InductionVar() *ir.Value { return f.Body().Arg(0) }

// IterArg returns the i-th loop-carried block argument.
func (f For) IterArg(i int) *ir.Value { return f.Body().Arg(1 + i) }

// Yield returns the loop body's terminating scf.yield.
func (f For) Yield() *ir.Op { return f.Body().Last() }

// AddIterArg extends the loop with a new loop-carried value: init is passed
// in, yielded is produced each iteration, and a new result is added.
// Returns (bodyArg, result).
func (f For) AddIterArg(init, yielded *ir.Value) (*ir.Value, *ir.Value) {
	f.Op.AddOperand(init)
	arg := f.Body().AddArg(init.Type())
	f.Yield().AddOperand(yielded)
	res := f.Op.AddResult(init.Type())
	return arg, res
}

// If is a structured view over an scf.if op.
type If struct {
	Op *ir.Op
}

// AsIf wraps op, or returns ok=false when op is not scf.if.
func AsIf(op *ir.Op) (If, bool) {
	if op == nil || op.Name() != OpIf {
		return If{}, false
	}
	return If{op}, true
}

// Condition returns the i1 condition operand.
func (i If) Condition() *ir.Value { return i.Op.Operand(0) }

// Then returns the then-region block.
func (i If) Then() *ir.Block { return i.Op.Region(0).Block() }

// Else returns the else-region block.
func (i If) Else() *ir.Block { return i.Op.Region(1).Block() }

// NewFor builds an scf.for with the given bounds and initial iteration
// arguments. The body receives the induction variable plus one argument per
// iter arg; the caller must terminate the body with NewYield.
func NewFor(b *ir.Builder, lb, ub, step *ir.Value, initArgs ...*ir.Value) For {
	operands := append([]*ir.Value{lb, ub, step}, initArgs...)
	resTypes := make([]ir.Type, len(initArgs))
	for i, a := range initArgs {
		resTypes[i] = a.Type()
	}
	op := b.Create(OpFor, operands, resTypes)
	region := op.AddRegion()
	region.Block().AddArg(lb.Type()) // induction variable
	for _, a := range initArgs {
		region.Block().AddArg(a.Type())
	}
	return For{op}
}

// NewIf builds an scf.if with empty then/else regions and the given result
// types. Both regions must be terminated with NewYield by the caller.
func NewIf(b *ir.Builder, cond *ir.Value, resultTypes ...ir.Type) If {
	op := b.Create(OpIf, []*ir.Value{cond}, resultTypes)
	op.AddRegion()
	op.AddRegion()
	return If{op}
}

// NewYield terminates a structured-control-flow region.
func NewYield(b *ir.Builder, values ...*ir.Value) *ir.Op {
	return b.Create(OpYield, values, nil)
}
