package rocc_test

import (
	"testing"

	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/rocc"
	"configwall/internal/ir"
)

func TestWriteAndFence(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c := arith.NewConstant(b, 1, ir.I64)
	w := rocc.NewWrite(b, 7, c, c)
	fe := rocc.NewFence(b, 11)
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if rocc.Funct7(w) != 7 || rocc.Funct7(fe) != 11 {
		t.Error("funct7 accessors wrong")
	}
	// rocc ops are impure: never removed by DCE even when "unused".
	ir.ApplyPatternsGreedy(m.Op(), nil)
	if ir.CountOpsNamed(m, rocc.OpWrite) != 1 || ir.CountOpsNamed(m, rocc.OpFence) != 1 {
		t.Error("DCE removed an impure rocc op")
	}
}

func TestWriteVerifier(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c := arith.NewConstant(b, 1, ir.I64)
	bad := ir.NewOp(rocc.OpWrite, []*ir.Value{c}, nil) // one operand, no funct7
	b.Insert(bad)
	fnc.NewReturn(b)
	if err := ir.Verify(m); err == nil {
		t.Error("verifier accepted malformed rocc.write")
	}
}
