// Package rocc is the Gemmini-style target dialect: RoCC custom
// instructions carrying two 64-bit payload registers, as lowered from accfg
// (paper Figure 8, step 5). Ops in this dialect map 1:1 to host
// instructions; they are impure and never reordered or removed by generic
// passes, mirroring the "always emitted, in order" property of volatile
// inline assembly that the baseline relies on.
package rocc

import (
	"fmt"

	"configwall/internal/ir"
)

// Op names.
const (
	// OpWrite is one RoCC custom instruction: funct7 selects the target
	// configuration register pair, the two operands carry 16 bytes.
	OpWrite = "rocc.write"
	// OpFence blocks the host until the accelerator is idle.
	OpFence = "rocc.fence"
)

func init() {
	ir.Register(ir.OpInfo{
		Name:    OpWrite,
		Summary: "RoCC custom instruction write (16 configuration bytes)",
		Verify: func(op *ir.Op) error {
			if op.NumOperands() != 2 || op.NumResults() != 0 {
				return fmt.Errorf("expects rs1, rs2 operands and no results")
			}
			if _, ok := op.Attr("funct7").(ir.IntegerAttr); !ok {
				return fmt.Errorf("missing 'funct7' attribute")
			}
			return nil
		},
	})
	ir.Register(ir.OpInfo{
		Name:    OpFence,
		Summary: "block until the accelerator is idle",
		Verify: func(op *ir.Op) error {
			if op.NumOperands() != 0 || op.NumResults() != 0 {
				return fmt.Errorf("expects no operands or results")
			}
			if _, ok := op.Attr("funct7").(ir.IntegerAttr); !ok {
				return fmt.Errorf("missing 'funct7' attribute")
			}
			return nil
		},
	})
}

// NewWrite builds a rocc.write of (rs1, rs2) to funct7.
func NewWrite(b *ir.Builder, funct7 uint32, rs1, rs2 *ir.Value) *ir.Op {
	op := b.Create(OpWrite, []*ir.Value{rs1, rs2}, nil)
	op.SetAttr("funct7", ir.IntAttr(int64(funct7)))
	return op
}

// NewFence builds a rocc.fence with the given funct7.
func NewFence(b *ir.Builder, funct7 uint32) *ir.Op {
	op := b.Create(OpFence, nil, nil)
	op.SetAttr("funct7", ir.IntAttr(int64(funct7)))
	return op
}

// Funct7 returns the funct7 selector of a rocc op.
func Funct7(op *ir.Op) uint32 {
	v, _ := op.IntAttrValue("funct7")
	return uint32(v)
}
