package memref_test

import (
	"testing"

	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/ir"
)

func TestDimFoldsStaticShape(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, []ir.Type{ir.Index}))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	buf := memref.NewAlloc(b, ir.MemRef(ir.I8, 48, 96))
	d := memref.NewDim(b, buf, 1)
	fnc.NewReturn(b, d)

	ir.ApplyPatternsGreedy(m.Op(), nil)
	ret := f.Body().Last()
	v, ok := arith.ConstantValue(ret.Operand(0))
	if !ok || v != 96 {
		t.Errorf("dim fold = (%d, %v), want 96", v, ok)
	}
}

func TestDimDynamicDoesNotFold(t *testing.T) {
	m := ir.NewModule()
	dyn := ir.MemRef(ir.I8, ir.DynamicSize, 8)
	f := fnc.NewFunc("f", ir.FuncType([]ir.Type{dyn}, []ir.Type{ir.Index}))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	d := memref.NewDim(b, f.Body().Arg(0), 0)
	fnc.NewReturn(b, d)

	ir.ApplyPatternsGreedy(m.Op(), nil)
	if got := ir.CountOpsNamed(m, memref.OpDim); got != 1 {
		t.Errorf("dynamic dim was folded away (count %d)", got)
	}
}

func TestMemRefTypeHelpers(t *testing.T) {
	mt := ir.MemRef(ir.I32, 4, ir.DynamicSize, 16)
	if mt.Rank() != 3 {
		t.Errorf("Rank = %d, want 3", mt.Rank())
	}
	dims := mt.Dims()
	if dims[0] != 4 || dims[1] != ir.DynamicSize || dims[2] != 16 {
		t.Errorf("Dims = %v", dims)
	}
	if mt.String() != "memref<4x?x16xi32>" {
		t.Errorf("String = %s", mt.String())
	}
	scalar := ir.MemRef(ir.I8)
	if scalar.Rank() != 0 || scalar.String() != "memref<i8>" {
		t.Errorf("rank-0 memref wrong: %s", scalar.String())
	}
}

func TestLoadStoreBuilders(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	buf := memref.NewAlloc(b, ir.MemRef(ir.I16, 8))
	idx := arith.NewConstant(b, 3, ir.Index)
	v := arith.NewConstant(b, 7, ir.I16)
	memref.NewStore(b, v, buf, idx)
	ld := memref.NewLoad(b, buf, idx)
	if !ir.TypesEqual(ld.Type(), ir.I16) {
		t.Errorf("load type = %s, want i16", ld.Type())
	}
	ptr := memref.NewExtractPointer(b, buf)
	if !ir.TypesEqual(ptr.Type(), ir.I64) {
		t.Errorf("pointer type = %s, want i64", ptr.Type())
	}
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}
