// Package memref provides a minimal buffer dialect: allocation, dimension
// queries, pointer extraction (for handing addresses to accelerators), and
// scalar load/store.
package memref

import (
	"fmt"

	"configwall/internal/ir"
)

// Op names.
const (
	OpAlloc          = "memref.alloc"
	OpDim            = "memref.dim"
	OpExtractPointer = "memref.extract_pointer"
	OpLoad           = "memref.load"
	OpStore          = "memref.store"
)

func init() {
	ir.Register(ir.OpInfo{
		Name:    OpAlloc,
		Summary: "allocate a buffer",
		Verify: func(op *ir.Op) error {
			if op.NumResults() != 1 {
				return fmt.Errorf("expects one result")
			}
			if _, ok := op.Result(0).Type().(ir.MemRefType); !ok {
				return fmt.Errorf("result must be a memref")
			}
			return nil
		},
	})
	ir.Register(ir.OpInfo{
		Name:    OpDim,
		Traits:  []ir.Trait{ir.TraitPure},
		Summary: "query a buffer dimension",
		Verify: func(op *ir.Op) error {
			if op.NumOperands() != 1 || op.NumResults() != 1 {
				return fmt.Errorf("expects one operand, one result")
			}
			if _, ok := op.Attr("index").(ir.IntegerAttr); !ok {
				return fmt.Errorf("missing 'index' attribute")
			}
			return nil
		},
		Fold: foldDim,
	})
	ir.Register(ir.OpInfo{
		Name:    OpExtractPointer,
		Traits:  []ir.Trait{ir.TraitPure},
		Summary: "extract the base address of a buffer",
		Verify: func(op *ir.Op) error {
			if op.NumOperands() != 1 || op.NumResults() != 1 {
				return fmt.Errorf("expects one operand, one result")
			}
			return nil
		},
	})
	ir.Register(ir.OpInfo{
		Name:    OpLoad,
		Summary: "load a scalar from a buffer",
	})
	ir.Register(ir.OpInfo{
		Name:    OpStore,
		Summary: "store a scalar to a buffer",
	})
}

func foldDim(op *ir.Op) ([]*ir.Value, bool) {
	mt, ok := op.Operand(0).Type().(ir.MemRefType)
	if !ok || op.Block() == nil {
		return nil, false
	}
	idx, _ := op.IntAttrValue("index")
	dims := mt.Dims()
	if int(idx) >= len(dims) || dims[idx] == ir.DynamicSize {
		return nil, false
	}
	b := ir.Before(op)
	c := b.Create("arith.constant", nil, []ir.Type{op.Result(0).Type()})
	c.SetAttr("value", ir.IntegerAttr{Value: int64(dims[idx]), Type: op.Result(0).Type()})
	return []*ir.Value{c.Result(0)}, false
}

// NewAlloc builds a buffer allocation of the given memref type.
func NewAlloc(b *ir.Builder, t ir.MemRefType) *ir.Value {
	return b.Create(OpAlloc, nil, []ir.Type{t}).Result(0)
}

// NewDim builds a dimension query returning index.
func NewDim(b *ir.Builder, buf *ir.Value, dim int) *ir.Value {
	op := b.Create(OpDim, []*ir.Value{buf}, []ir.Type{ir.Index})
	op.SetAttr("index", ir.IndexAttr(int64(dim)))
	return op.Result(0)
}

// NewExtractPointer builds a base-address extraction returning i64.
func NewExtractPointer(b *ir.Builder, buf *ir.Value) *ir.Value {
	return b.Create(OpExtractPointer, []*ir.Value{buf}, []ir.Type{ir.I64}).Result(0)
}

// NewLoad builds a scalar load at the given indices.
func NewLoad(b *ir.Builder, buf *ir.Value, indices ...*ir.Value) *ir.Value {
	mt := buf.Type().(ir.MemRefType)
	return b.Create(OpLoad, append([]*ir.Value{buf}, indices...), []ir.Type{mt.Elem}).Result(0)
}

// NewStore builds a scalar store at the given indices.
func NewStore(b *ir.Builder, value, buf *ir.Value, indices ...*ir.Value) *ir.Op {
	return b.Create(OpStore, append([]*ir.Value{value, buf}, indices...), nil)
}
