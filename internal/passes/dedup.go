package passes

import (
	"configwall/internal/dialects/accfg"
	"configwall/internal/ir"
)

// Dedup returns the configuration-deduplication pass (paper §5.4): field
// writes whose value is already guaranteed to be in the target register are
// removed from accfg.setup ops. SSA-value identity is used as the proxy for
// runtime-value equality, relying on CSE/canonicalization having run first.
func Dedup() ir.Pass {
	return ir.PassFunc{
		PassName: "accfg-dedup",
		Fn: func(m *ir.Module) error {
			for _, f := range m.Funcs() {
				fs := AnalyzeFields(f)
				ir.Walk(f, func(op *ir.Op) {
					s, ok := accfg.AsSetup(op)
					if !ok || !s.HasInState() {
						return
					}
					in := s.InState()
					for _, field := range s.Fields() {
						if fs.Known(in, field.Name) == field.Value {
							s.RemoveField(field.Name)
						}
					}
				})
			}
			return nil
		},
	}
}

// RemoveEmptySetups returns the cleanup pass that erases accfg.setup ops
// with no remaining field writes, forwarding their input state (or erasing
// outright when the produced state is unused).
func RemoveEmptySetups() ir.Pass {
	return ir.PassFunc{
		PassName: "accfg-remove-empty-setups",
		Fn: func(m *ir.Module) error {
			changed := true
			for changed {
				changed = false
				var empties []*ir.Op
				m.Walk(func(op *ir.Op) {
					if s, ok := accfg.AsSetup(op); ok && s.NumFields() == 0 {
						empties = append(empties, op)
					}
				})
				for _, op := range empties {
					s, _ := accfg.AsSetup(op)
					switch {
					case s.HasInState():
						s.State().ReplaceAllUsesWith(s.InState())
						op.Erase()
						changed = true
					case s.State().NumUses() == 0:
						op.Erase()
						changed = true
					}
				}
			}
			return nil
		},
	}
}

// MergeSetups returns the cleanup pass that folds chains of setups with no
// launch in between into a single setup (paper §5.4.1, final clean-up).
// A setup whose produced state is consumed only by another setup in the
// same block is merged into that later setup; later writes win.
func MergeSetups() ir.Pass {
	return ir.PassFunc{
		PassName: "accfg-merge-setups",
		Fn: func(m *ir.Module) error {
			changed := true
			for changed {
				changed = false
				var candidates []*ir.Op
				m.Walk(func(op *ir.Op) {
					if _, ok := accfg.AsSetup(op); ok {
						candidates = append(candidates, op)
					}
				})
				for _, op := range candidates {
					if op.Block() == nil {
						continue
					}
					if mergeIntoSuccessor(op) {
						changed = true
					}
				}
			}
			return nil
		},
	}
}

// mergeIntoSuccessor merges setup a into its unique consumer setup, when
// that consumer chains directly from a within the same block.
func mergeIntoSuccessor(aOp *ir.Op) bool {
	a, _ := accfg.AsSetup(aOp)
	state := a.State()
	if state.NumUses() != 1 {
		return false
	}
	use := state.Uses()[0]
	b, ok := accfg.AsSetup(use.Op)
	if !ok || use.Index != 0 || !b.HasInState() || b.InState() != state {
		return false
	}
	if b.Op.Block() != aOp.Block() {
		// Merging across region boundaries would change how often the
		// fields are written (e.g. hoisted writes re-entering a loop).
		return false
	}
	// Prepend a's fields that b does not overwrite.
	bNames := map[string]bool{}
	for _, n := range b.FieldNames() {
		bNames[n] = true
	}
	var carried []accfg.Field
	for _, f := range a.Fields() {
		if !bNames[f.Name] {
			carried = append(carried, f)
		}
	}
	// Rebuild b's field list as carried ++ b.Fields().
	existing := b.Fields()
	for _, f := range append([]accfg.Field{}, existing...) {
		b.RemoveField(f.Name)
	}
	if in := a.InState(); in != nil {
		b.SetInState(in)
	} else {
		b.ClearInState()
	}
	for _, f := range carried {
		b.AddField(f.Name, f.Value)
	}
	for _, f := range existing {
		b.AddField(f.Name, f.Value)
	}
	aOp.Erase()
	return true
}
