package passes_test

import (
	"testing"

	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/ir"
	"configwall/internal/passes"
)

// buildCalleeModule creates:
//
//	configure(x) { setup("acc", v = x); launch; await }
//	main() { configure(7); configure(7) }
//
// Without inlining, the calls are opaque clobbers and the second setup
// cannot be deduplicated; after inlining + trace + dedup it can.
func buildCalleeModule(t testing.TB) *ir.Module {
	t.Helper()
	m := ir.NewModule()

	callee := fnc.NewFunc("configure", ir.FuncType([]ir.Type{ir.I64}, nil))
	m.Append(callee.Op)
	cb := ir.AtEnd(callee.Body())
	s := accfg.NewSetup(cb, "acc", nil, []accfg.Field{{Name: "v", Value: callee.Body().Arg(0)}})
	l := accfg.NewLaunch(cb, s.State())
	accfg.NewAwait(cb, l.Token())
	fnc.NewReturn(cb)

	main := fnc.NewFunc("main", ir.FuncType(nil, nil))
	m.Append(main.Op)
	mb := ir.AtEnd(main.Body())
	c7 := arith.NewConstant(mb, 7, ir.I64)
	fnc.NewCall(mb, "configure", []*ir.Value{c7}, nil)
	fnc.NewCall(mb, "configure", []*ir.Value{c7}, nil)
	fnc.NewReturn(mb)

	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInlineExpandsCalls(t *testing.T) {
	m := buildCalleeModule(t)
	runPipeline(t, m, passes.Inline())

	main := m.FindFunc("main")
	count := 0
	ir.Walk(main, func(op *ir.Op) {
		if op.Name() == "fnc.call" {
			count++
		}
	})
	if count != 0 {
		t.Fatalf("calls remaining in main = %d, want 0\n%s", count, ir.PrintModule(m))
	}
	setups := 0
	ir.Walk(main, func(op *ir.Op) {
		if op.Name() == accfg.OpSetup {
			setups++
		}
	})
	if setups != 2 {
		t.Fatalf("inlined setups = %d, want 2", setups)
	}
}

// TestInlineEnablesCrossCallDedup is the §8 future-work scenario: after
// inlining, state tracing chains the two invocations and dedup removes the
// redundant field write that the call boundary used to hide.
func TestInlineEnablesCrossCallDedup(t *testing.T) {
	// Without inlining there is nothing to optimize: the single setup
	// lives inside the callee and each call is an opaque clobber, so the
	// module keeps both calls and the one setup.
	m1 := buildCalleeModule(t)
	runPipeline(t, m1, passes.TraceStates(), passes.Dedup())
	if got := ir.CountOpsNamed(m1, "fnc.call"); got != 2 {
		t.Fatalf("calls before inlining = %d, want 2", got)
	}
	if got := totalSetupFields(m1); got != 1 {
		t.Fatalf("callee setup fields = %d, want 1 (unchanged)", got)
	}

	// With inlining first: CSE merges the argument, dedup fires.
	m2 := buildCalleeModule(t)
	runPipeline(t, m2,
		passes.Inline(),
		passes.CSE(),
		passes.TraceStates(),
		passes.Dedup(),
		passes.RemoveEmptySetups(),
	)
	main := m2.FindFunc("main")
	setups := 0
	ir.Walk(main, func(op *ir.Op) {
		if op.Name() == accfg.OpSetup {
			setups++
		}
	})
	if setups != 1 {
		t.Errorf("after inline+dedup, setups in main = %d, want 1 (second was redundant)\n%s",
			setups, ir.PrintModule(m2))
	}
	if err := ir.Verify(m2); err != nil {
		t.Fatal(err)
	}
}

func totalSetupFields(m *ir.Module) int {
	n := 0
	m.Walk(func(op *ir.Op) {
		if s, ok := accfg.AsSetup(op); ok {
			n += s.NumFields()
		}
	})
	return n
}

func TestInlineWithResults(t *testing.T) {
	m := ir.NewModule()
	callee := fnc.NewFunc("double", ir.FuncType([]ir.Type{ir.I64}, []ir.Type{ir.I64}))
	m.Append(callee.Op)
	cb := ir.AtEnd(callee.Body())
	c2 := arith.NewConstant(cb, 2, ir.I64)
	prod := arith.NewMul(cb, callee.Body().Arg(0), c2)
	fnc.NewReturn(cb, prod)

	main := fnc.NewFunc("main", ir.FuncType(nil, []ir.Type{ir.I64}))
	m.Append(main.Op)
	mb := ir.AtEnd(main.Body())
	c21 := arith.NewConstant(mb, 21, ir.I64)
	call := fnc.NewCall(mb, "double", []*ir.Value{c21}, []ir.Type{ir.I64})
	fnc.NewReturn(mb, call.Result(0))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	runPipeline(t, m, passes.Inline(), passes.Canonicalize())
	ret := main.Body().Last()
	v, ok := arith.ConstantValue(ret.Operand(0))
	if !ok || v != 42 {
		t.Errorf("inlined+folded result = (%d, %v), want 42\n%s", v, ok, ir.PrintModule(m))
	}
}

func TestInlineLeavesExternalCalls(t *testing.T) {
	m := ir.NewModule()
	main := fnc.NewFunc("main", ir.FuncType(nil, nil))
	m.Append(main.Op)
	mb := ir.AtEnd(main.Body())
	fnc.NewCall(mb, "external_function", nil, nil)
	fnc.NewReturn(mb)

	runPipeline(t, m, passes.Inline())
	if got := ir.CountOpsNamed(m, "fnc.call"); got != 1 {
		t.Errorf("external call count = %d, want 1 (must not inline)", got)
	}
}

func TestInlineRejectsDirectRecursion(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("rec", ir.FuncType(nil, nil))
	m.Append(f.Op)
	fb := ir.AtEnd(f.Body())
	fnc.NewCall(fb, "rec", nil, nil)
	fnc.NewReturn(fb)

	// Must terminate without error and leave the recursive call alone.
	runPipeline(t, m, passes.Inline())
	if got := ir.CountOpsNamed(m, "fnc.call"); got != 1 {
		t.Errorf("recursive call count = %d, want 1", got)
	}
}

func TestInlineCollapsesCallChains(t *testing.T) {
	m := ir.NewModule()
	leaf := fnc.NewFunc("leaf", ir.FuncType(nil, []ir.Type{ir.I64}))
	m.Append(leaf.Op)
	lb := ir.AtEnd(leaf.Body())
	fnc.NewReturn(lb, arith.NewConstant(lb, 5, ir.I64))

	mid := fnc.NewFunc("mid", ir.FuncType(nil, []ir.Type{ir.I64}))
	m.Append(mid.Op)
	midb := ir.AtEnd(mid.Body())
	midCall := fnc.NewCall(midb, "leaf", nil, []ir.Type{ir.I64})
	fnc.NewReturn(midb, midCall.Result(0))

	main := fnc.NewFunc("main", ir.FuncType(nil, []ir.Type{ir.I64}))
	m.Append(main.Op)
	mb := ir.AtEnd(main.Body())
	topCall := fnc.NewCall(mb, "mid", nil, []ir.Type{ir.I64})
	fnc.NewReturn(mb, topCall.Result(0))

	runPipeline(t, m, passes.Inline())
	calls := 0
	ir.Walk(main.Op, func(op *ir.Op) {
		if op.Name() == "fnc.call" {
			calls++
		}
	})
	if calls != 0 {
		t.Errorf("calls in main after chain inlining = %d, want 0", calls)
	}
	ret := main.Body().Last()
	if v, ok := arith.ConstantValue(ret.Operand(0)); !ok || v != 5 {
		t.Errorf("chain result wrong: %d %v", v, ok)
	}
}
