package passes

// Archived reproductions of the four historical overlap-pass soundness
// bugs (found by differential fuzzing; see DESIGN.md §5, §9). Each guard
// that fixed one of them has a test-only toggle re-introducing the bug;
// these tests replay the buggy rewrite and assert the static checker
// (analysis.CompareModules) rejects the miscompiled output, and that with
// the guard in place the pass output is statically accepted. This pins the
// checker's coverage: a regression in either the guard or the analysis
// turns one of these red.

import (
	"strings"
	"testing"

	"configwall/internal/analysis"
	"configwall/internal/ir"

	_ "configwall/internal/dialects/fnc"
	_ "configwall/internal/dialects/memref"
	_ "configwall/internal/dialects/scf"
)

func parseRepro(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

// runRepro applies the overlap pass (with every accelerator concurrent) to
// a clone of base under the given toggle and returns the static verdict of
// the result against the original.
func runRepro(t *testing.T, base *ir.Module, toggle *bool) analysis.Verdict {
	t.Helper()
	if toggle != nil {
		*toggle = true
		t.Cleanup(func() { *toggle = false })
	}
	m := base.Clone()
	pm := ir.NewPassManager(Overlap(func(string) bool { return true }))
	if err := pm.Run(m); err != nil {
		t.Fatalf("pass failed: %v", err)
	}
	if toggle != nil {
		*toggle = false
	}
	return analysis.CompareModules(base, m)
}

// assertRejected checks the buggy variant is statically refuted and the
// finding mentions the expected detail fragment.
func assertRejected(t *testing.T, v analysis.Verdict, fragment string) {
	t.Helper()
	if !v.Rejected() {
		t.Fatalf("buggy rewrite not rejected: %s", v)
	}
	if fragment != "" && !strings.Contains(v.String(), fragment) {
		t.Errorf("verdict %q does not mention %q", v, fragment)
	}
}

// Bug class 1: straight-line overlap hopping a setup over another setup and
// launch of the same accelerator — the hopped launch commits the moved
// setup's values instead of its program-order configuration.
const reproStagingSrc = `
"builtin.module"() ({
  "fnc.func"() ({
    %c1 = "arith.constant"() {value = 1 : i64} : () -> (i64)
    %c9 = "arith.constant"() {value = 9 : i64} : () -> (i64)
    %c2 = "arith.constant"() {value = 2 : i64} : () -> (i64)
    %s0 = "accfg.setup"(%c1) {accelerator = "acc", fields = ["x"]} : (i64) -> (!accfg.state<"acc">)
    %t0 = "accfg.launch"(%s0) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%t0) : (!accfg.token<"acc">) -> ()
    %sB = "accfg.setup"(%c9) {accelerator = "acc", fields = ["x"]} : (i64) -> (!accfg.state<"acc">)
    %tB = "accfg.launch"(%sB) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%tB) : (!accfg.token<"acc">) -> ()
    %s1 = "accfg.setup"(%s0, %c2) {accelerator = "acc", fields = ["x"], in_state} : (!accfg.state<"acc">, i64) -> (!accfg.state<"acc">)
    %t1 = "accfg.launch"(%s1) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%t1) : (!accfg.token<"acc">) -> ()
    "fnc.return"() : () -> ()
  }) {function_type = () -> (), sym_name = "main"} : () -> ()
}) : () -> ()
`

func TestReproStagingReorderAcrossLaunch(t *testing.T) {
	base := parseRepro(t, reproStagingSrc)
	if v := runRepro(t, base, nil); v.Rejected() {
		t.Fatalf("guarded pass statically rejected: %s", v)
	}
	v := runRepro(t, base, &overlapSkipStagingGuard)
	assertRejected(t, v, "field x")
}

// Bug class 2: software pipelining a loop with a same-accelerator launch
// after it — the post-loop launch observes the phantom next-iteration
// configuration the rotated setup left in the staging registers.
const reproPhantomSrc = `
"builtin.module"() ({
  "fnc.func"() ({
    %lb = "arith.constant"() {value = 0 : index} : () -> (index)
    %ub = "arith.constant"() {value = 4 : index} : () -> (index)
    %st = "arith.constant"() {value = 1 : index} : () -> (index)
    %c7 = "arith.constant"() {value = 7 : i64} : () -> (i64)
    %s0 = "accfg.setup"() {accelerator = "acc", fields = []} : () -> (!accfg.state<"acc">)
    %r = "scf.for"(%lb, %ub, %st, %s0) ({
      ^(%i: index, %state: !accfg.state<"acc">):
      %iv = "arith.index_cast"(%i) : (index) -> (i64)
      %s = "accfg.setup"(%state, %iv) {accelerator = "acc", fields = ["x"], in_state} : (!accfg.state<"acc">, i64) -> (!accfg.state<"acc">)
      %tk = "accfg.launch"(%s) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
      "accfg.await"(%tk) : (!accfg.token<"acc">) -> ()
      "scf.yield"(%s) : (!accfg.state<"acc">) -> ()
    }) : (index, index, index, !accfg.state<"acc">) -> (!accfg.state<"acc">)
    %sF = "accfg.setup"(%r, %c7) {accelerator = "acc", fields = ["y"], in_state} : (!accfg.state<"acc">, i64) -> (!accfg.state<"acc">)
    %tF = "accfg.launch"(%sF) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%tF) : (!accfg.token<"acc">) -> ()
    "fnc.return"() : () -> ()
  }) {function_type = () -> (), sym_name = "main"} : () -> ()
}) : () -> ()
`

func TestReproPhantomConfigLeak(t *testing.T) {
	base := parseRepro(t, reproPhantomSrc)
	if v := runRepro(t, base, nil); v.Rejected() {
		t.Fatalf("guarded pass statically rejected: %s", v)
	}
	// The final launch keeps x from the last *launched* iteration (3); the
	// buggy pipeline leaves the never-launched iteration-4 value behind.
	v := runRepro(t, base, &overlapSkipPhantomGuard)
	assertRejected(t, v, "field x")
}

// Bug class 3: software pipelining a loop whose body holds a conditional
// nested launch — after rotation the nested launch commits the *next*
// iteration's configuration.
const reproNestedSrc = `
"builtin.module"() ({
  "fnc.func"() ({
    ^(%p: i64):
    %lb = "arith.constant"() {value = 0 : index} : () -> (index)
    %ub = "arith.constant"() {value = 3 : index} : () -> (index)
    %st = "arith.constant"() {value = 1 : index} : () -> (index)
    %z = "arith.constant"() {value = 0 : i64} : () -> (i64)
    %s0 = "accfg.setup"() {accelerator = "acc", fields = []} : () -> (!accfg.state<"acc">)
    %cnd = "arith.cmpi"(%p, %z) {predicate = "ne"} : (i64, i64) -> (i1)
    %r = "scf.for"(%lb, %ub, %st, %s0) ({
      ^(%i: index, %state: !accfg.state<"acc">):
      %iv = "arith.index_cast"(%i) : (index) -> (i64)
      %s = "accfg.setup"(%state, %iv) {accelerator = "acc", fields = ["x"], in_state} : (!accfg.state<"acc">, i64) -> (!accfg.state<"acc">)
      %tk = "accfg.launch"(%s) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
      "accfg.await"(%tk) : (!accfg.token<"acc">) -> ()
      "scf.if"(%cnd) ({
        %t2 = "accfg.launch"(%s) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
        "accfg.await"(%t2) : (!accfg.token<"acc">) -> ()
        "scf.yield"() : () -> ()
      }, {
        "scf.yield"() : () -> ()
      }) : (i1) -> ()
      "scf.yield"(%s) : (!accfg.state<"acc">) -> ()
    }) : (index, index, index, !accfg.state<"acc">) -> (!accfg.state<"acc">)
    "fnc.return"() : () -> ()
  }) {function_type = (i64) -> (), sym_name = "main"} : () -> ()
}) : () -> ()
`

func TestReproNestedLaunchCommit(t *testing.T) {
	base := parseRepro(t, reproNestedSrc)
	if v := runRepro(t, base, nil); v.Rejected() {
		t.Fatalf("guarded pass statically rejected: %s", v)
	}
	v := runRepro(t, base, &overlapSkipNestedGuard)
	assertRejected(t, v, "field x")
}

// Bug class 4: software pipelining a loop whose body performs host memory
// traffic before the launch — rotation hoists the launch (and the device's
// memory effects) above the host access without alias analysis.
const reproMemrefSrc = `
"builtin.module"() ({
  "fnc.func"() ({
    %lb = "arith.constant"() {value = 0 : index} : () -> (index)
    %ub = "arith.constant"() {value = 3 : index} : () -> (index)
    %st = "arith.constant"() {value = 1 : index} : () -> (index)
    %c5 = "arith.constant"() {value = 5 : i64} : () -> (i64)
    %buf = "memref.alloc"(%ub) : (index) -> (memref<i64>)
    %s0 = "accfg.setup"() {accelerator = "acc", fields = []} : () -> (!accfg.state<"acc">)
    %r = "scf.for"(%lb, %ub, %st, %s0) ({
      ^(%i: index, %state: !accfg.state<"acc">):
      "memref.store"(%c5, %buf, %i) : (i64, memref<i64>, index) -> ()
      %iv = "arith.index_cast"(%i) : (index) -> (i64)
      %s = "accfg.setup"(%state, %iv) {accelerator = "acc", fields = ["x"], in_state} : (!accfg.state<"acc">, i64) -> (!accfg.state<"acc">)
      %tk = "accfg.launch"(%s) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
      "accfg.await"(%tk) : (!accfg.token<"acc">) -> ()
      "scf.yield"(%s) : (!accfg.state<"acc">) -> ()
    }) : (index, index, index, !accfg.state<"acc">) -> (!accfg.state<"acc">)
    "fnc.return"() : () -> ()
  }) {function_type = () -> (), sym_name = "main"} : () -> ()
}) : () -> ()
`

func TestReproLaunchHoistOverHostMemory(t *testing.T) {
	base := parseRepro(t, reproMemrefSrc)
	if v := runRepro(t, base, nil); v.Rejected() {
		t.Fatalf("guarded pass statically rejected: %s", v)
	}
	v := runRepro(t, base, &overlapSkipMemrefGuard)
	assertRejected(t, v, "reordered")
}
