package passes

import (
	"configwall/internal/dialects/accfg"
	"configwall/internal/ir"
)

// TraceStates returns the state-tracing pass (paper §5.3): it connects
// accfg.setup operations into per-accelerator state chains by adding the
// previous live state as the in-state operand, threading states through
// scf.for iteration arguments and scf.if results. The chains are what the
// deduplication pass later reasons about, in the spirit of memory SSA.
//
// Chains are never created across operations that may clobber accelerator
// state (accfg.EffectsOf == all): the trace conservatively restarts there.
func TraceStates() ir.Pass {
	return ir.PassFunc{
		PassName: "accfg-trace-states",
		Fn: func(m *ir.Module) error {
			for _, f := range m.Funcs() {
				for _, accel := range acceleratorsIn(f) {
					traceBlock(f.Region(0).Block(), accel, nil)
				}
			}
			return nil
		},
	}
}

// acceleratorsIn lists the distinct accelerator names configured in f,
// in first-appearance order.
func acceleratorsIn(f *ir.Op) []string {
	var names []string
	seen := map[string]bool{}
	ir.Walk(f, func(op *ir.Op) {
		if s, ok := accfg.AsSetup(op); ok && !seen[s.Accelerator()] {
			seen[s.Accelerator()] = true
			names = append(names, s.Accelerator())
		}
	})
	return names
}

// containsSetupFor reports whether the subtree rooted at op configures the
// accelerator.
func containsSetupFor(op *ir.Op, accel string) bool {
	found := false
	ir.Walk(op, func(o *ir.Op) {
		if s, ok := accfg.AsSetup(o); ok && s.Accelerator() == accel {
			found = true
		}
	})
	return found
}

// subtreeClobbers reports whether any op in the subtree clobbers
// accelerator state.
func subtreeClobbers(op *ir.Op) bool {
	clobbers := false
	ir.Walk(op, func(o *ir.Op) {
		if accfg.ClobbersState(o) {
			clobbers = true
		}
	})
	return clobbers
}

// traceBlock walks a block threading the live state for one accelerator.
// current is the state value live on entry (nil = unknown). It returns the
// state live on exit (nil = unknown/clobbered).
func traceBlock(b *ir.Block, accel string, current *ir.Value) *ir.Value {
	for _, op := range b.Ops() {
		switch op.Name() {
		case accfg.OpSetup:
			s, _ := accfg.AsSetup(op)
			if s.Accelerator() != accel {
				continue
			}
			if current != nil && !s.HasInState() {
				s.SetInState(current)
			}
			current = s.State()

		case scf_OpFor:
			current = traceFor(op, accel, current)

		case scf_OpIf:
			current = traceIf(op, accel, current)

		default:
			if accfg.ClobbersState(op) {
				current = nil
			}
		}
	}
	return current
}

// Local copies of the scf op names to avoid an import cycle with dialects
// that themselves use passes in tests.
const (
	scf_OpFor   = "scf.for"
	scf_OpIf    = "scf.if"
	scf_OpYield = "scf.yield"
)

// traceFor threads the state through an scf.for via a new iteration
// argument, creating an empty anchor setup before the loop when no state is
// live yet (paper Figure 9, first block).
func traceFor(loop *ir.Op, accel string, current *ir.Value) *ir.Value {
	if !containsSetupFor(loop, accel) {
		if subtreeClobbers(loop) {
			return nil
		}
		return current
	}
	if subtreeClobbers(loop) {
		// Cannot thread state through a loop with clobbering ops: trace
		// the inside standalone and lose the chain.
		traceBlock(loop.Region(0).Block(), accel, nil)
		return nil
	}
	if current == nil {
		b := ir.Before(loop)
		anchor := accfg.NewSetup(b, accel, nil, nil)
		current = anchor.State()
	}
	body := loop.Region(0).Block()
	yield := body.Last()

	// Add the loop-carried state: operand, block arg, result.
	loop.AddOperand(current)
	arg := body.AddArg(current.Type())
	res := loop.AddResult(current.Type())

	final := traceBlock(body, accel, arg)
	if final == nil {
		// A clobber appeared at depth >1 that subtreeClobbers missed
		// (defensive); fall back to yielding the arg unchanged.
		final = arg
	}
	yield.AddOperand(final)
	return res
}

// traceIf threads the state through an scf.if by yielding the final state of
// both branches as a new result.
func traceIf(ifOp *ir.Op, accel string, current *ir.Value) *ir.Value {
	if !containsSetupFor(ifOp, accel) {
		if subtreeClobbers(ifOp) {
			return nil
		}
		return current
	}
	if subtreeClobbers(ifOp) {
		traceBlock(ifOp.Region(0).Block(), accel, current)
		traceBlock(ifOp.Region(1).Block(), accel, current)
		return nil
	}
	if current == nil {
		b := ir.Before(ifOp)
		anchor := accfg.NewSetup(b, accel, nil, nil)
		current = anchor.State()
	}
	thenBlk := ifOp.Region(0).Block()
	elseBlk := ifOp.Region(1).Block()
	thenFinal := traceBlock(thenBlk, accel, current)
	elseFinal := traceBlock(elseBlk, accel, current)
	if thenFinal == nil {
		thenFinal = current
	}
	if elseFinal == nil {
		elseFinal = current
	}
	thenBlk.Last().AddOperand(thenFinal)
	elseBlk.Last().AddOperand(elseFinal)
	return ifOp.AddResult(current.Type())
}
