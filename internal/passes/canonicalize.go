// Package passes implements the compiler passes of the paper's pipeline
// (Figure 8): generic cleanups (canonicalize, CSE, LICM) that regular MLIR
// provides, plus the accfg-specific passes that form the paper's
// contribution — state tracing (§5.3), configuration deduplication (§5.4),
// setup hoisting through control flow (§5.4.1) and configuration overlap
// (§5.5).
package passes

import (
	"fmt"
	"sort"
	"strings"

	"configwall/internal/ir"
)

// Canonicalize returns a pass that greedily folds constants, applies op
// canonicalization patterns and erases dead pure ops.
func Canonicalize() ir.Pass {
	return ir.PassFunc{
		PassName: "canonicalize",
		Fn: func(m *ir.Module) error {
			ir.ApplyPatternsGreedy(m.Op(), nil)
			return nil
		},
	}
}

// CSE returns the common-subexpression-elimination pass. The paper relies on
// CSE to make SSA-value equality a usable proxy for runtime-value equality
// during configuration deduplication (§5.4).
func CSE() ir.Pass {
	return ir.PassFunc{
		PassName: "cse",
		Fn: func(m *ir.Module) error {
			for _, f := range m.Funcs() {
				cseBlock(f.Region(0).Block(), map[string]*ir.Op{})
			}
			return nil
		},
	}
}

// opKey builds a structural hash key for a pure op: name, operand
// identities, attributes and result types.
func opKey(op *ir.Op) string {
	var sb strings.Builder
	sb.WriteString(op.Name())
	sb.WriteByte('(')
	for _, o := range op.Operands() {
		fmt.Fprintf(&sb, "%p,", o)
	}
	sb.WriteByte(')')
	keys := op.AttrKeys()
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "{%s=%s}", k, op.Attr(k).String())
	}
	for _, r := range op.Results() {
		sb.WriteString(r.Type().String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// cseBlock deduplicates pure ops in a block. seen maps structural keys to
// the first defining op; nested regions inherit the map by copy so values
// from enclosing scopes can be reused, mirroring MLIR's scoped CSE.
func cseBlock(b *ir.Block, seen map[string]*ir.Op) {
	for _, op := range b.Ops() {
		if op.Block() == nil {
			continue
		}
		if ir.IsPure(op) && op.NumRegions() == 0 && op.NumResults() > 0 {
			key := opKey(op)
			if prev, ok := seen[key]; ok {
				for i, r := range op.Results() {
					r.ReplaceAllUsesWith(prev.Result(i))
				}
				op.Erase()
				continue
			}
			seen[key] = op
		}
		for ri := 0; ri < op.NumRegions(); ri++ {
			inner := make(map[string]*ir.Op, len(seen))
			for k, v := range seen {
				inner[k] = v
			}
			cseBlock(op.Region(ri).Block(), inner)
		}
	}
}

// LICM returns the loop-invariant-code-motion pass: pure ops inside scf.for
// whose operands are all defined outside the loop move in front of it.
func LICM() ir.Pass {
	return ir.PassFunc{
		PassName: "licm",
		Fn: func(m *ir.Module) error {
			for _, f := range m.Funcs() {
				// Iterate to a fixpoint so chains of invariant ops hoist.
				for licmWalk(f.Region(0).Block()) {
				}
			}
			return nil
		},
	}
}

func licmWalk(b *ir.Block) bool {
	changed := false
	for _, op := range b.Ops() {
		for ri := 0; ri < op.NumRegions(); ri++ {
			if licmWalk(op.Region(ri).Block()) {
				changed = true
			}
		}
		if op.Name() != "scf.for" {
			continue
		}
		body := op.Region(0).Block()
		for _, inner := range body.Ops() {
			if inner == body.Last() {
				continue // never move the terminator
			}
			if !ir.IsPure(inner) || inner.NumRegions() != 0 {
				continue
			}
			if definedInside(inner, op) {
				continue
			}
			inner.MoveBefore(op)
			changed = true
		}
	}
	return changed
}

// definedInside reports whether any operand of op is defined within loop.
func definedInside(op *ir.Op, loop *ir.Op) bool {
	for _, o := range op.Operands() {
		var defOp *ir.Op
		if o.IsBlockArg() {
			parent := o.OwnerBlock().ParentOp()
			if parent != nil && (parent == loop || loop.IsAncestorOf(parent)) {
				return true
			}
			continue
		}
		defOp = o.DefiningOp()
		if defOp != nil && (defOp == loop || loop.IsAncestorOf(defOp)) {
			return true
		}
	}
	return false
}
