package passes

import (
	"configwall/internal/dialects/accfg"
	"configwall/internal/ir"
)

// HoistLoopInvariantFields returns the setup-LICM pass (paper §5.4.1): setup
// fields whose values are loop-invariant move to a setup created in front of
// the loop, so the loop body only re-writes the fields that actually change
// per iteration (paper Figure 9, first -> second block).
//
// A field hoists only when:
//   - its setup is at depth 1 of the loop body (executes unconditionally),
//   - its setup chains from the loop's state iteration argument,
//   - its value is defined outside the loop, and
//   - no other setup in the loop writes the same field (two different
//     in-loop writes can never hoist, matching the paper's constraint).
func HoistLoopInvariantFields() ir.Pass {
	return ir.PassFunc{
		PassName: "accfg-hoist-loop-invariant-fields",
		Fn: func(m *ir.Module) error {
			changed := true
			for changed {
				changed = false
				var loops []*ir.Op
				m.Walk(func(op *ir.Op) {
					if op.Name() == scf_OpFor {
						loops = append(loops, op)
					}
				})
				for _, loop := range loops {
					if loop.Block() == nil {
						continue
					}
					if hoistFromLoop(loop) {
						changed = true
					}
				}
			}
			return nil
		},
	}
}

func hoistFromLoop(loop *ir.Op) bool {
	body := loop.Region(0).Block()
	changed := false
	for _, op := range body.Ops() {
		s, ok := accfg.AsSetup(op)
		if !ok || !s.HasInState() {
			continue
		}
		arg := s.InState()
		if !arg.IsBlockArg() || arg.OwnerBlock() != body {
			continue
		}
		// Map the body arg back to the loop operand carrying the state.
		argIdx := arg.ResultIndex() - 1
		if argIdx < 0 {
			continue
		}
		var hoistable []accfg.Field
		for _, f := range s.Fields() {
			if definedInsideValue(f.Value, loop) {
				continue
			}
			if writtenByOtherSetup(loop, op, f.Name, s.Accelerator()) {
				continue
			}
			hoistable = append(hoistable, f)
		}
		if len(hoistable) == 0 {
			continue
		}
		// Build (or extend) the pre-loop setup on the state operand.
		init := loop.Operand(3 + argIdx)
		b := ir.Before(loop)
		pre := accfg.NewSetup(b, s.Accelerator(), init, hoistable)
		loop.SetOperand(3+argIdx, pre.State())
		for _, f := range hoistable {
			s.RemoveField(f.Name)
		}
		changed = true
	}
	return changed
}

// definedInsideValue reports whether v is defined within loop.
func definedInsideValue(v *ir.Value, loop *ir.Op) bool {
	if v.IsBlockArg() {
		p := v.OwnerBlock().ParentOp()
		return p != nil && (p == loop || loop.IsAncestorOf(p))
	}
	d := v.DefiningOp()
	return d != nil && (d == loop || loop.IsAncestorOf(d))
}

// writtenByOtherSetup reports whether any setup in the loop other than self
// writes the named field for the same accelerator.
func writtenByOtherSetup(loop *ir.Op, self *ir.Op, field, accel string) bool {
	conflict := false
	ir.Walk(loop, func(o *ir.Op) {
		if o == self {
			return
		}
		if s, ok := accfg.AsSetup(o); ok && s.Accelerator() == accel && s.FieldValue(field) != nil {
			conflict = true
		}
	})
	return conflict
}

// SinkSetupsIntoBranches returns the branch-hoisting pass (paper §5.4.1,
// "lifting setup calls into branching logic"): a setup chained from the
// state produced by an scf.if is cloned into both branches, restoring a
// linear state chain per path so deduplication does not lose information to
// the branch meet.
func SinkSetupsIntoBranches() ir.Pass {
	return ir.PassFunc{
		PassName: "accfg-sink-setups-into-branches",
		Fn: func(m *ir.Module) error {
			changed := true
			for changed {
				changed = false
				var setups []*ir.Op
				m.Walk(func(op *ir.Op) {
					if _, ok := accfg.AsSetup(op); ok {
						setups = append(setups, op)
					}
				})
				for _, op := range setups {
					if op.Block() == nil {
						continue
					}
					if sinkIntoBranches(op) {
						changed = true
					}
				}
			}
			return nil
		},
	}
}

func sinkIntoBranches(op *ir.Op) bool {
	s, _ := accfg.AsSetup(op)
	if !s.HasInState() {
		return false
	}
	in := s.InState()
	ifOp := in.DefiningOp()
	if ifOp == nil || ifOp.Name() != scf_OpIf || ifOp.Block() != op.Block() {
		return false
	}
	// The if-state must feed only this setup; other readers (e.g. a launch
	// between the if and the setup) pin the setup in place.
	if in.NumUses() != 1 {
		return false
	}
	// Every op between the if and the setup must preserve accelerator state
	// (the setup conceptually moves above them into the branches).
	for o := ifOp.Next(); o != nil && o != op; o = o.Next() {
		if accfg.EffectsOf(o) == ir.EffectsAll {
			return false
		}
	}
	// Field values must dominate the scf.if to be usable inside it.
	for _, f := range s.Fields() {
		if !dominatesOp(f.Value, ifOp) {
			return false
		}
	}
	resIdx := in.ResultIndex()
	for ri := 0; ri < 2; ri++ {
		blk := ifOp.Region(ri).Block()
		yield := blk.Last()
		branchState := yield.Operand(resIdx)
		b := ir.Before(yield)
		clone := accfg.NewSetup(b, s.Accelerator(), branchState, s.Fields())
		yield.SetOperand(resIdx, clone.State())
	}
	// The if result now carries the post-setup state.
	s.State().ReplaceAllUsesWith(in)
	op.Erase()
	return true
}

// dominatesOp reports whether value v is available at op: v is defined by an
// op strictly before op in the same block, or in a block enclosing op's
// block, or is a block argument of an enclosing block.
func dominatesOp(v *ir.Value, op *ir.Op) bool {
	if v.IsBlockArg() {
		return blockEncloses(v.OwnerBlock(), op)
	}
	def := v.DefiningOp()
	if def == nil {
		return false
	}
	if def.Block() == op.Block() {
		return def.IsBefore(op)
	}
	// Walk up from op looking for an ancestor in def's block after def.
	for p := op.ParentOp(); p != nil; p = p.ParentOp() {
		if p.Block() == def.Block() {
			return def.IsBefore(p)
		}
	}
	return false
}

// blockEncloses reports whether op is nested inside block b (at any depth).
func blockEncloses(b *ir.Block, op *ir.Op) bool {
	for o := op; o != nil; o = o.ParentOp() {
		if o.Block() == b {
			return true
		}
	}
	return false
}
