package passes

import (
	"configwall/internal/dialects/arith"
	"configwall/internal/ir"
)

// SimplifyTrivialLoops returns the pass that removes scf.for loops with a
// statically-known trip count of zero (replaced by their initial values) or
// one (body inlined with the induction variable bound to the lower bound).
//
// This models the loop simplifications a compiler performs when it can see
// through the loop body — exactly what volatile inline assembly prevents
// (paper §3.1) and what the accfg abstraction re-enables: the paper
// attributes part of the Gemmini uplift to "better constant folding and
// loop unrolling" (§6.1). It therefore belongs to the accfg pipelines, not
// to the volatile-asm baseline.
func SimplifyTrivialLoops() ir.Pass {
	return ir.PassFunc{
		PassName: "simplify-trivial-loops",
		Fn: func(m *ir.Module) error {
			for {
				var target *ir.Op
				trip := int64(-1)
				m.Walk(func(op *ir.Op) {
					if target != nil || op.Name() != scf_OpFor {
						return
					}
					if t, ok := tripCount(op); ok && t <= 1 {
						target = op
						trip = t
					}
				})
				if target == nil {
					return nil
				}
				if trip == 0 {
					eraseZeroTrip(target)
				} else {
					inlineSingleTrip(target)
				}
			}
		},
	}
}

// tripCount returns the loop's static trip count when lb, ub and step are
// constants.
func tripCount(loop *ir.Op) (int64, bool) {
	lb, okL := arith.ConstantValue(loop.Operand(0))
	ub, okU := arith.ConstantValue(loop.Operand(1))
	step, okS := arith.ConstantValue(loop.Operand(2))
	if !okL || !okU || !okS || step <= 0 {
		return 0, false
	}
	if ub <= lb {
		return 0, true
	}
	return (ub - lb + step - 1) / step, true
}

func eraseZeroTrip(loop *ir.Op) {
	n := loop.NumOperands() - 3
	for i := 0; i < n; i++ {
		loop.Result(i).ReplaceAllUsesWith(loop.Operand(3 + i))
	}
	loop.Erase()
}

func inlineSingleTrip(loop *ir.Op) {
	body := loop.Region(0).Block()
	yield := body.Last()

	mapping := map[*ir.Value]*ir.Value{
		body.Arg(0): loop.Operand(0), // iv -> lb
	}
	n := loop.NumOperands() - 3
	for i := 0; i < n; i++ {
		mapping[body.Arg(1+i)] = loop.Operand(3 + i)
	}
	b := ir.Before(loop)
	for op := body.First(); op != nil && op != yield; op = op.Next() {
		b.Insert(op.Clone(mapping))
	}
	for i := 0; i < n; i++ {
		y := yield.Operand(i)
		if m, ok := mapping[y]; ok {
			y = m
		}
		loop.Result(i).ReplaceAllUsesWith(y)
	}
	loop.Erase()
}
