package passes

import (
	"configwall/internal/dialects/accfg"
	"configwall/internal/ir"
)

// FieldStates is the result of the known-fields dataflow analysis: for every
// !accfg.state SSA value, the configuration fields whose runtime values are
// known (as SSA values) when that state is live.
//
// The analysis is an optimistic fixpoint over the state chains built by
// TraceStates. Lattice elements are either TOP (optimistic "anything", used
// only while iterating) or a map from field name to the SSA value last
// written. The transfer functions follow the paper (§5.4):
//
//   - setup result: the input state's fields overlaid with the setup's own,
//   - scf.for iter arg / result: the meet of initial and yielded states,
//   - scf.if result: the meet of both branch yields,
//   - anything else: bottom (nothing known).
//
// The meet keeps a field only when both sides agree on the same SSA value —
// SSA-value equality is the paper's proxy for runtime-value equality.
type FieldStates struct {
	states map[*ir.Value]fieldState
}

type fieldState struct {
	top    bool
	fields map[string]*ir.Value
}

func bottomState() fieldState { return fieldState{fields: map[string]*ir.Value{}} }
func topState() fieldState    { return fieldState{top: true, fields: map[string]*ir.Value{}} }

// equal compares two lattice elements.
func (a fieldState) equal(b fieldState) bool {
	if a.top != b.top || len(a.fields) != len(b.fields) {
		return false
	}
	for k, v := range a.fields {
		if b.fields[k] != v {
			return false
		}
	}
	return true
}

// overlay returns a copy of s with the given field writes applied.
func (s fieldState) overlay(fields []accfg.Field) fieldState {
	out := fieldState{top: s.top, fields: make(map[string]*ir.Value, len(s.fields)+len(fields))}
	for k, v := range s.fields {
		out.fields[k] = v
	}
	for _, f := range fields {
		out.fields[f.Name] = f.Value
	}
	return out
}

// meet intersects two lattice elements. TOP is the identity.
func meet(a, b fieldState) fieldState {
	if a.top {
		return b
	}
	if b.top {
		return a
	}
	out := bottomState()
	for k, v := range a.fields {
		if b.fields[k] == v {
			out.fields[k] = v
		}
	}
	return out
}

// AnalyzeFields runs the known-fields analysis over one function.
func AnalyzeFields(f *ir.Op) *FieldStates {
	fs := &FieldStates{states: map[*ir.Value]fieldState{}}

	// Collect every state-typed SSA value in the function.
	var stateValues []*ir.Value
	ir.Walk(f, func(op *ir.Op) {
		for _, r := range op.Results() {
			if _, ok := r.Type().(ir.StateType); ok {
				stateValues = append(stateValues, r)
			}
		}
		for ri := 0; ri < op.NumRegions(); ri++ {
			for _, a := range op.Region(ri).Block().Args() {
				if _, ok := a.Type().(ir.StateType); ok {
					stateValues = append(stateValues, a)
				}
			}
		}
	})
	for _, v := range stateValues {
		fs.states[v] = topState()
	}

	// Fixpoint iteration: monotone descending from TOP, terminates.
	for round := 0; round < len(stateValues)+2; round++ {
		changed := false
		for _, v := range stateValues {
			next := fs.transfer(v)
			if !next.equal(fs.states[v]) {
				fs.states[v] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return fs
}

// transfer recomputes the lattice element for one state value from its
// definition.
func (fs *FieldStates) transfer(v *ir.Value) fieldState {
	if v.IsBlockArg() {
		parent := v.OwnerBlock().ParentOp()
		if parent == nil || parent.Name() != scf_OpFor {
			return bottomState()
		}
		// scf.for body arg i (i>0 — arg 0 is the induction variable):
		// meet of init operand and yielded value.
		idx := v.ResultIndex() - 1
		if idx < 0 {
			return bottomState()
		}
		init := parent.Operand(3 + idx)
		yield := parent.Region(0).Block().Last()
		if yield == nil || yield.NumOperands() <= idx {
			return fs.lookup(init)
		}
		return meet(fs.lookup(init), fs.lookup(yield.Operand(idx)))
	}

	def := v.DefiningOp()
	if def == nil {
		return bottomState()
	}
	switch def.Name() {
	case accfg.OpSetup:
		s, _ := accfg.AsSetup(def)
		base := bottomState()
		if in := s.InState(); in != nil {
			base = fs.lookup(in)
		}
		return base.overlay(s.Fields())
	case scf_OpFor:
		idx := v.ResultIndex()
		init := def.Operand(3 + idx)
		yield := def.Region(0).Block().Last()
		if yield == nil || yield.NumOperands() <= idx {
			return fs.lookup(init)
		}
		return meet(fs.lookup(init), fs.lookup(yield.Operand(idx)))
	case scf_OpIf:
		idx := v.ResultIndex()
		ty := def.Region(0).Block().Last()
		ey := def.Region(1).Block().Last()
		if ty == nil || ey == nil || ty.NumOperands() <= idx || ey.NumOperands() <= idx {
			return bottomState()
		}
		return meet(fs.lookup(ty.Operand(idx)), fs.lookup(ey.Operand(idx)))
	}
	return bottomState()
}

func (fs *FieldStates) lookup(v *ir.Value) fieldState {
	if s, ok := fs.states[v]; ok {
		return s
	}
	return bottomState()
}

// Known returns the SSA value the named field is guaranteed to hold when
// state is live, or nil when unknown.
func (fs *FieldStates) Known(state *ir.Value, field string) *ir.Value {
	s := fs.lookup(state)
	if s.top {
		return nil
	}
	return s.fields[field]
}

// KnownFields returns a copy of all known fields at the given state.
func (fs *FieldStates) KnownFields(state *ir.Value) map[string]*ir.Value {
	s := fs.lookup(state)
	out := make(map[string]*ir.Value, len(s.fields))
	if s.top {
		return out
	}
	for k, v := range s.fields {
		out[k] = v
	}
	return out
}
