package passes

import (
	"fmt"

	"configwall/internal/ir"
)

// Inline returns the function-inlining pass. The paper's outlook (§8) calls
// for reasoning about accelerator state across function call boundaries;
// inlining module-local callees is the simplest sound answer: after
// inlining, the state-tracing pass sees one straight-line region and the
// call no longer acts as a conservative clobber (§5.3).
//
// A call is inlined when the callee is defined in the module, its body is a
// single block ending in fnc.return, and it is not (transitively)
// recursive. Calls to external functions are left alone — they keep their
// clobber-all semantics unless annotated with #accfg.effects<none>.
func Inline() ir.Pass {
	return ir.PassFunc{
		PassName: "inline",
		Fn: func(m *ir.Module) error {
			// Iterate to a fixpoint so call chains collapse; the recursion
			// guard bounds the iteration count.
			for i := 0; i < 32; i++ {
				call := findInlinableCall(m)
				if call == nil {
					return nil
				}
				if err := inlineCall(m, call); err != nil {
					return err
				}
			}
			return fmt.Errorf("inline: call graph too deep or cyclic")
		},
	}
}

func findInlinableCall(m *ir.Module) *ir.Op {
	var found *ir.Op
	m.Walk(func(op *ir.Op) {
		if found != nil || op.Name() != "fnc.call" {
			return
		}
		callee := calleeOf(m, op)
		if callee == nil {
			return
		}
		if callsSelf(callee) {
			return
		}
		found = op
	})
	return found
}

func calleeOf(m *ir.Module, call *ir.Op) *ir.Op {
	sym, ok := call.Attr("callee").(ir.SymbolRefAttr)
	if !ok {
		return nil
	}
	return m.FindFunc(sym.Symbol)
}

// callsSelf reports whether f contains a call to its own symbol (direct
// recursion; mutual recursion is caught by the fixpoint bound).
func callsSelf(f *ir.Op) bool {
	name, _ := f.StringAttrValue("sym_name")
	recursive := false
	ir.Walk(f, func(op *ir.Op) {
		if op.Name() != "fnc.call" {
			return
		}
		if sym, ok := op.Attr("callee").(ir.SymbolRefAttr); ok && sym.Symbol == name {
			recursive = true
		}
	})
	return recursive
}

func inlineCall(m *ir.Module, call *ir.Op) error {
	callee := calleeOf(m, call)
	body := callee.Region(0).Block()
	ret := body.Last()
	if ret == nil || ret.Name() != "fnc.return" {
		return fmt.Errorf("inline: callee %v does not end in fnc.return", callee.Attr("sym_name"))
	}
	if body.NumArgs() != call.NumOperands() {
		return fmt.Errorf("inline: call passes %d arguments, callee takes %d", call.NumOperands(), body.NumArgs())
	}
	if ret.NumOperands() != call.NumResults() {
		return fmt.Errorf("inline: callee returns %d values, call expects %d", ret.NumOperands(), call.NumResults())
	}

	mapping := map[*ir.Value]*ir.Value{}
	for i, arg := range body.Args() {
		mapping[arg] = call.Operand(i)
	}
	b := ir.Before(call)
	for op := body.First(); op != nil && op != ret; op = op.Next() {
		b.Insert(op.Clone(mapping))
	}
	for i := 0; i < call.NumResults(); i++ {
		v := ret.Operand(i)
		if mv, ok := mapping[v]; ok {
			v = mv
		}
		call.Result(i).ReplaceAllUsesWith(v)
	}
	call.Erase()
	return nil
}
