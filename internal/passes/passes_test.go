package passes_test

import (
	"testing"

	"configwall/internal/analysis"
	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
	"configwall/internal/passes"
)

// buildFigure9Input builds the paper's Figure 9 starting point:
//
//	scf.for %i = 0..10 {
//	  %s = accfg.setup("A" = %ptrA, "i" = %i)   // no chaining yet
//	  %t = accfg.launch %s
//	  accfg.await %t
//	}
func buildFigure9Input(t testing.TB) (*ir.Module, fnc.Func) {
	t.Helper()
	m := ir.NewModule()
	f := fnc.NewFunc("kernel", ir.FuncType([]ir.Type{ir.MemRef(ir.I8, 64, 64)}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())

	ptrA := memref.NewExtractPointer(b, f.Body().Arg(0))
	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, 10, ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)
	loop := scf.NewFor(b, lb, ub, step)
	lbld := ir.AtEnd(loop.Body())
	iv64 := arith.NewIndexCast(lbld, loop.InductionVar(), ir.I64)
	s := accfg.NewSetup(lbld, "gemm", nil, []accfg.Field{
		{Name: "A", Value: ptrA},
		{Name: "i", Value: iv64},
	})
	l := accfg.NewLaunch(lbld, s.State())
	accfg.NewAwait(lbld, l.Token())
	scf.NewYield(lbld)
	fnc.NewReturn(b)

	if err := ir.Verify(m); err != nil {
		t.Fatalf("figure 9 input invalid: %v", err)
	}
	return m, f
}

func runPipeline(t testing.TB, m *ir.Module, ps ...ir.Pass) {
	t.Helper()
	pm := ir.NewPassManager(ps...)
	// Every test pipeline runs under the static config-state checker: a
	// pass whose output provably diverges from its input fails here.
	pm.CheckEach = analysis.PassCheck
	if err := pm.Run(m); err != nil {
		t.Fatalf("pipeline failed: %v\n%s", err, ir.PrintModule(m))
	}
}

func allSetups(m *ir.Module) []accfg.Setup {
	var out []accfg.Setup
	m.Walk(func(op *ir.Op) {
		if s, ok := accfg.AsSetup(op); ok {
			out = append(out, s)
		}
	})
	return out
}

func TestTraceStatesThreadsLoop(t *testing.T) {
	m, _ := buildFigure9Input(t)
	runPipeline(t, m, passes.TraceStates())

	// Expect: an empty anchor setup before the loop, the loop carrying a
	// state iter arg, and the inner setup chained from the arg.
	setups := allSetups(m)
	if len(setups) != 2 {
		t.Fatalf("setups = %d, want 2 (anchor + inner)\n%s", len(setups), ir.PrintModule(m))
	}
	var inner accfg.Setup
	found := false
	for _, s := range setups {
		if s.NumFields() == 2 {
			inner = s
			found = true
		}
	}
	if !found {
		t.Fatalf("inner setup not found")
	}
	if !inner.HasInState() {
		t.Fatal("inner setup not chained")
	}
	if !inner.InState().IsBlockArg() {
		t.Fatal("inner setup should chain from the loop iter arg")
	}
	// The loop must yield the inner state.
	loop := inner.Op.Block().ParentOp()
	forOp, ok := scf.AsFor(loop)
	if !ok {
		t.Fatal("inner setup not directly inside scf.for")
	}
	y := forOp.Yield()
	if y.NumOperands() != 1 || y.Operand(0) != inner.State() {
		t.Errorf("loop does not yield the inner state")
	}
}

func TestTraceStatesStraightLine(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c := arith.NewConstant(b, 7, ir.I64)
	s1 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c}})
	l1 := accfg.NewLaunch(b, s1.State())
	accfg.NewAwait(b, l1.Token())
	s2 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c}})
	l2 := accfg.NewLaunch(b, s2.State())
	accfg.NewAwait(b, l2.Token())
	fnc.NewReturn(b)

	runPipeline(t, m, passes.TraceStates())
	if !s2.HasInState() || s2.InState() != s1.State() {
		t.Fatalf("s2 not chained to s1:\n%s", ir.PrintModule(m))
	}
}

func TestTraceStatesStopsAtClobber(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c := arith.NewConstant(b, 7, ir.I64)
	s1 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c}})
	l1 := accfg.NewLaunch(b, s1.State())
	accfg.NewAwait(b, l1.Token())
	// An unknown call clobbers accelerator state by default.
	fnc.NewCall(b, "mystery", nil, nil)
	s2 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c}})
	l2 := accfg.NewLaunch(b, s2.State())
	accfg.NewAwait(b, l2.Token())
	fnc.NewReturn(b)

	runPipeline(t, m, passes.TraceStates())
	if s2.HasInState() {
		t.Fatalf("s2 chained across a clobbering call:\n%s", ir.PrintModule(m))
	}
}

func TestEffectsNoneAnnotationAllowsChaining(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c := arith.NewConstant(b, 7, ir.I64)
	s1 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c}})
	l1 := accfg.NewLaunch(b, s1.State())
	accfg.NewAwait(b, l1.Token())
	call := fnc.NewCall(b, "printf", nil, nil)
	call.SetAttr(accfg.AttrEffects, ir.EffectsAttr{Kind: ir.EffectsNone})
	s2 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c}})
	l2 := accfg.NewLaunch(b, s2.State())
	accfg.NewAwait(b, l2.Token())
	fnc.NewReturn(b)

	runPipeline(t, m, passes.TraceStates(), passes.Dedup())
	if !s2.HasInState() {
		t.Fatalf("s2 not chained across effects<none> call:\n%s", ir.PrintModule(m))
	}
	if s2.NumFields() != 0 {
		t.Errorf("redundant field not deduplicated across effects<none> call")
	}
}

func TestDedupStraightLine(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c7 := arith.NewConstant(b, 7, ir.I64)
	c9 := arith.NewConstant(b, 9, ir.I64)
	s1 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c7}, {Name: "y", Value: c9}})
	l1 := accfg.NewLaunch(b, s1.State())
	accfg.NewAwait(b, l1.Token())
	// Second setup re-writes x with the same value, y with a new one.
	s2 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c7}, {Name: "y", Value: c7}})
	l2 := accfg.NewLaunch(b, s2.State())
	accfg.NewAwait(b, l2.Token())
	fnc.NewReturn(b)

	runPipeline(t, m, passes.TraceStates(), passes.Dedup())
	if got := s2.FieldNames(); len(got) != 1 || got[0] != "y" {
		t.Fatalf("s2 fields = %v, want [y]\n%s", got, ir.PrintModule(m))
	}
	// s1 must keep both fields (nothing known before it).
	if got := s1.FieldNames(); len(got) != 2 {
		t.Errorf("s1 fields = %v, want 2 fields", got)
	}
}

func TestFigure9FullDedupPipeline(t *testing.T) {
	m, _ := buildFigure9Input(t)
	runPipeline(t, m,
		passes.TraceStates(),
		passes.HoistLoopInvariantFields(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
	)

	// Figure 9 middle block: pre-loop setup holds A (and i's first value is
	// not hoistable since i changes), inner setup holds only i.
	setups := allSetups(m)
	if len(setups) != 2 {
		t.Fatalf("setups = %d, want 2:\n%s", len(setups), ir.PrintModule(m))
	}
	var pre, inner accfg.Setup
	for _, s := range setups {
		if s.Op.ParentOp().Name() == "fnc.func" {
			pre = s
		} else {
			inner = s
		}
	}
	if pre.Op == nil || inner.Op == nil {
		t.Fatalf("expected one pre-loop and one in-loop setup:\n%s", ir.PrintModule(m))
	}
	if got := pre.FieldNames(); len(got) != 1 || got[0] != "A" {
		t.Errorf("pre-loop setup fields = %v, want [A]", got)
	}
	if got := inner.FieldNames(); len(got) != 1 || got[0] != "i" {
		t.Errorf("in-loop setup fields = %v, want [i]", got)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapPipelinesLoop(t *testing.T) {
	m, _ := buildFigure9Input(t)
	concurrent := func(string) bool { return true }
	runPipeline(t, m,
		passes.TraceStates(),
		passes.HoistLoopInvariantFields(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
		passes.Overlap(concurrent),
		passes.Canonicalize(),
	)

	// Figure 9 third block: inside the loop the launch must now come first
	// and read the loop-carried state; the setup configures i+1.
	var loop scf.For
	m.Walk(func(op *ir.Op) {
		if f, ok := scf.AsFor(op); ok {
			loop = f
		}
	})
	if loop.Op == nil {
		t.Fatal("loop disappeared")
	}
	var firstAccfg *ir.Op
	for _, op := range loop.Body().Ops() {
		if op.Dialect() == "accfg" {
			firstAccfg = op
			break
		}
	}
	if firstAccfg == nil || firstAccfg.Name() != accfg.OpLaunch {
		t.Fatalf("first accfg op in body = %v, want launch:\n%s", firstAccfg, ir.PrintModule(m))
	}
	l, _ := accfg.AsLaunch(firstAccfg)
	if !l.State().IsBlockArg() {
		t.Errorf("pipelined launch must read the loop-carried state")
	}
	// A prologue setup must exist before the loop carrying both A and i.
	var prologue []accfg.Setup
	for _, s := range allSetups(m) {
		if s.Op.ParentOp().Name() == "fnc.func" {
			prologue = append(prologue, s)
		}
	}
	if len(prologue) == 0 {
		t.Fatalf("no prologue setup:\n%s", ir.PrintModule(m))
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapSkipsSequentialAccelerators(t *testing.T) {
	m, _ := buildFigure9Input(t)
	before := ir.PrintModule(m)
	runPipeline(t, m, passes.TraceStates())
	snapshot := ir.PrintModule(m)
	runPipeline(t, m, passes.Overlap(func(string) bool { return false }))
	if got := ir.PrintModule(m); got != snapshot {
		t.Errorf("overlap changed IR for a sequential accelerator:\nbefore trace:\n%s\nafter:\n%s", before, got)
	}
}

func TestOverlapStraightLine(t *testing.T) {
	// launch+await then a dependent setup: the setup should move above the
	// await so it runs while the accelerator is busy.
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType([]ir.Type{ir.I64}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	x := f.Body().Arg(0)
	s1 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "p", Value: x}})
	l1 := accfg.NewLaunch(b, s1.State())
	aw := accfg.NewAwait(b, l1.Token())
	c2 := arith.NewConstant(b, 2, ir.I64)
	doubled := arith.NewMul(b, x, c2)
	s2 := accfg.NewSetup(b, "acc", s1.State(), []accfg.Field{{Name: "p", Value: doubled}})
	l2 := accfg.NewLaunch(b, s2.State())
	accfg.NewAwait(b, l2.Token())
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	runPipeline(t, m, passes.Overlap(func(string) bool { return true }))

	// s2 (and its multiply) must now appear before the first await.
	order := map[*ir.Op]int{}
	for i, op := range f.Body().Ops() {
		order[op] = i
	}
	if order[s2.Op] > order[aw.Op] {
		t.Fatalf("setup not moved above await:\n%s", ir.PrintModule(m))
	}
	if order[doubled.DefiningOp()] > order[aw.Op] {
		t.Errorf("setup's input slice not moved above await")
	}
	if order[s2.Op] < order[l1.Op] {
		t.Errorf("setup moved above the launch it must follow")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestSinkSetupsIntoBranches(t *testing.T) {
	// if %c { yield setup(x=1) } else { yield setup(x=2) } ; setup(x=1, y=3)
	// After sinking + dedup: the trailing setup is cloned into both
	// branches; the then-branch clone drops the redundant x=1.
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType([]ir.Type{ir.I1}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	cond := f.Body().Arg(0)
	c1 := arith.NewConstant(b, 1, ir.I64)
	c2 := arith.NewConstant(b, 2, ir.I64)
	c3 := arith.NewConstant(b, 3, ir.I64)

	ifOp := scf.NewIf(b, cond, ir.StateType{Accelerator: "acc"})
	tb := ir.AtEnd(ifOp.Then())
	st := accfg.NewSetup(tb, "acc", nil, []accfg.Field{{Name: "x", Value: c1}})
	scf.NewYield(tb, st.State())
	eb := ir.AtEnd(ifOp.Else())
	se := accfg.NewSetup(eb, "acc", nil, []accfg.Field{{Name: "x", Value: c2}})
	scf.NewYield(eb, se.State())

	after := accfg.NewSetup(b, "acc", ifOp.Op.Result(0), []accfg.Field{
		{Name: "x", Value: c1}, {Name: "y", Value: c3},
	})
	l := accfg.NewLaunch(b, after.State())
	accfg.NewAwait(b, l.Token())
	fnc.NewReturn(b)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}

	runPipeline(t, m,
		passes.SinkSetupsIntoBranches(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
	)

	// The then-branch must have a merged setup without a redundant x write.
	thenOps := ifOp.Then().Ops()
	var thenSetups []accfg.Setup
	for _, op := range thenOps {
		if s, ok := accfg.AsSetup(op); ok {
			thenSetups = append(thenSetups, s)
		}
	}
	if len(thenSetups) != 1 {
		t.Fatalf("then-branch setups = %d, want 1 after merging:\n%s", len(thenSetups), ir.PrintModule(m))
	}
	fieldsThen := map[string]bool{}
	for _, n := range thenSetups[0].FieldNames() {
		fieldsThen[n] = true
	}
	if !fieldsThen["x"] || !fieldsThen["y"] {
		t.Errorf("then-branch merged setup fields = %v, want x and y", thenSetups[0].FieldNames())
	}
	// x is written once with value 1 in the then branch (the duplicate
	// write deduplicated, then merged into a single setup).
	if v, _ := arith.ConstantValue(thenSetups[0].FieldValue("x")); v != 1 {
		t.Errorf("then-branch x = %d, want 1", v)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestCSEEnablesDedup(t *testing.T) {
	// Two setups compute the same packed word independently; without CSE
	// the SSA values differ and dedup must keep the write, with CSE it can
	// remove it — the paper's §5.4 argument.
	build := func() (*ir.Module, accfg.Setup) {
		m := ir.NewModule()
		f := fnc.NewFunc("f", ir.FuncType([]ir.Type{ir.I64}, nil))
		m.Append(f.Op)
		b := ir.AtEnd(f.Body())
		x := f.Body().Arg(0)
		c16 := arith.NewConstant(b, 16, ir.I64)
		p1 := arith.NewShl(b, x, c16)
		s1 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "packed", Value: p1}})
		l1 := accfg.NewLaunch(b, s1.State())
		accfg.NewAwait(b, l1.Token())
		c16b := arith.NewConstant(b, 16, ir.I64)
		p2 := arith.NewShl(b, x, c16b)
		s2 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "packed", Value: p2}})
		l2 := accfg.NewLaunch(b, s2.State())
		accfg.NewAwait(b, l2.Token())
		fnc.NewReturn(b)
		return m, s2
	}

	mNoCSE, s2NoCSE := build()
	runPipeline(t, mNoCSE, passes.TraceStates(), passes.Dedup())
	if s2NoCSE.NumFields() != 1 {
		t.Errorf("without CSE, dedup removed a write it could not prove redundant")
	}

	mCSE, s2CSE := build()
	runPipeline(t, mCSE, passes.CSE(), passes.TraceStates(), passes.Dedup())
	if s2CSE.NumFields() != 0 {
		t.Errorf("with CSE, the redundant write should be removed:\n%s", ir.PrintModule(mCSE))
	}
}

func TestLICMHoistsInvariantArith(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType([]ir.Type{ir.I64}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	x := f.Body().Arg(0)
	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, 8, ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)
	loop := scf.NewFor(b, lb, ub, step)
	lbld := ir.AtEnd(loop.Body())
	c2 := arith.NewConstant(lbld, 2, ir.I64)
	inv := arith.NewMul(lbld, x, c2) // invariant
	iv := arith.NewIndexCast(lbld, loop.InductionVar(), ir.I64)
	variant := arith.NewAdd(lbld, inv, iv) // depends on iv
	s := accfg.NewSetup(lbld, "acc", nil, []accfg.Field{{Name: "v", Value: variant}})
	l := accfg.NewLaunch(lbld, s.State())
	accfg.NewAwait(lbld, l.Token())
	scf.NewYield(lbld)
	fnc.NewReturn(b)

	runPipeline(t, m, passes.LICM())
	if inv.DefiningOp().Block() != f.Body() {
		t.Errorf("invariant multiply not hoisted:\n%s", ir.PrintModule(m))
	}
	if variant.DefiningOp().Block() == f.Body() {
		t.Errorf("iv-dependent add wrongly hoisted")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestKnownFieldsAnalysis(t *testing.T) {
	m, _ := buildFigure9Input(t)
	runPipeline(t, m, passes.TraceStates(), passes.HoistLoopInvariantFields())

	var fn *ir.Op
	for _, f := range m.Funcs() {
		fn = f
	}
	fs := passes.AnalyzeFields(fn)

	// Inside the loop, the iter-arg state must know field A (hoisted, same
	// on all paths) but not i (changes every iteration).
	var inner accfg.Setup
	m.Walk(func(op *ir.Op) {
		if s, ok := accfg.AsSetup(op); ok && s.Op.ParentOp().Name() == "scf.for" {
			inner = s
		}
	})
	if inner.Op == nil {
		t.Fatalf("no in-loop setup:\n%s", ir.PrintModule(m))
	}
	in := inner.InState()
	if got := fs.Known(in, "A"); got == nil {
		t.Errorf("field A should be known at the loop iter arg")
	}
	if got := fs.Known(in, "i"); got != nil {
		t.Errorf("field i should be unknown at the loop iter arg (loop-variant)")
	}
}

func TestMergeSetupsFoldsChains(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c1 := arith.NewConstant(b, 1, ir.I64)
	c2 := arith.NewConstant(b, 2, ir.I64)
	s1 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c1}})
	s2 := accfg.NewSetup(b, "acc", s1.State(), []accfg.Field{{Name: "y", Value: c2}})
	s3 := accfg.NewSetup(b, "acc", s2.State(), []accfg.Field{{Name: "x", Value: c2}})
	l := accfg.NewLaunch(b, s3.State())
	accfg.NewAwait(b, l.Token())
	fnc.NewReturn(b)

	runPipeline(t, m, passes.MergeSetups())
	setups := allSetups(m)
	if len(setups) != 1 {
		t.Fatalf("setups = %d, want 1 after merging:\n%s", len(setups), ir.PrintModule(m))
	}
	s := setups[0]
	// Later x=2 write wins; y=2 carried.
	if v, _ := arith.ConstantValue(s.FieldValue("x")); v != 2 {
		t.Errorf("merged x = %d, want 2", v)
	}
	if v, _ := arith.ConstantValue(s.FieldValue("y")); v != 2 {
		t.Errorf("merged y = %d, want 2", v)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEmptySetups(t *testing.T) {
	m := ir.NewModule()
	f := fnc.NewFunc("f", ir.FuncType(nil, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	c1 := arith.NewConstant(b, 1, ir.I64)
	s1 := accfg.NewSetup(b, "acc", nil, []accfg.Field{{Name: "x", Value: c1}})
	s2 := accfg.NewSetup(b, "acc", s1.State(), nil) // empty
	l := accfg.NewLaunch(b, s2.State())
	accfg.NewAwait(b, l.Token())
	fnc.NewReturn(b)

	runPipeline(t, m, passes.RemoveEmptySetups())
	if got := len(allSetups(m)); got != 1 {
		t.Fatalf("setups = %d, want 1", got)
	}
	if l.State() != s1.State() {
		t.Error("launch not rewired to the surviving state")
	}
}
