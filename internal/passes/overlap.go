package passes

import (
	"configwall/internal/analysis"
	"configwall/internal/dialects/accfg"
	"configwall/internal/ir"
)

// Test-only toggles that disable individual overlap soundness guards,
// re-introducing the four historical bug classes the guards were added for
// (each originally found by differential fuzzing, now also caught by the
// static checker — overlap_repro_test.go replays them and asserts
// analysis.CompareModules rejects the miscompiled output). Never set
// outside tests.
var (
	overlapSkipNestedGuard  bool // pipelining: ignore accfg ops nested in the body
	overlapSkipMemrefGuard  bool // pipelining: ignore host memory ops in the body
	overlapSkipPhantomGuard bool // pipelining: ignore launches reachable after the loop
	overlapSkipStagingGuard bool // straight-line: hop setups over staging writers
)

// Overlap returns the configuration-computation overlap pass (paper §5.5).
// It only applies to accelerators with concurrent-configuration hardware
// (staging registers); concurrent names whether a given accelerator
// supports it.
//
// The pass performs two rewrites:
//
//  1. Loop software-pipelining (paper Figure 9, second -> third block): in a
//     loop whose body is setup -> launch -> await, the launch is moved to
//     the top of the body reading the loop-carried state (configured by the
//     previous iteration), and the setup is retargeted to the *next*
//     iteration's values, so it executes while the accelerator runs.
//  2. Straight-line overlap: a setup whose input state was launched and is
//     awaited earlier in the same block moves up in front of the await,
//     hiding its latency behind the in-flight computation.
func Overlap(concurrent func(accelerator string) bool) ir.Pass {
	return ir.PassFunc{
		PassName: "accfg-overlap",
		Fn: func(m *ir.Module) error {
			var loops []*ir.Op
			m.Walk(func(op *ir.Op) {
				if op.Name() == scf_OpFor {
					loops = append(loops, op)
				}
			})
			for _, loop := range loops {
				pipelineLoop(loop, concurrent)
			}
			// Straight-line overlap, applied to every block (including the
			// loop preheaders the pipelining just created).
			var blocks []*ir.Block
			m.Walk(func(op *ir.Op) {
				for ri := 0; ri < op.NumRegions(); ri++ {
					blocks = append(blocks, op.Region(ri).Block())
				}
			})
			for _, blk := range blocks {
				overlapBlock(blk, concurrent)
			}
			return nil
		},
	}
}

// pipelineLoop rewrites one loop into pipelined form when its body matches
// the setup/launch/await shape. Reports whether it changed the loop.
func pipelineLoop(loop *ir.Op, concurrent func(string) bool) bool {
	body := loop.Region(0).Block()
	yield := body.Last()
	if yield == nil || yield.Name() != scf_OpYield {
		return false
	}

	// Find the pattern ops at depth 1.
	var setupOp, launchOp, awaitOp *ir.Op
	for _, op := range body.Ops() {
		switch op.Name() {
		case accfg.OpSetup:
			if setupOp != nil {
				return false // multiple setups: not the simple shape
			}
			setupOp = op
		case accfg.OpLaunch:
			if launchOp != nil {
				return false
			}
			launchOp = op
		case accfg.OpAwait:
			if awaitOp != nil {
				return false
			}
			awaitOp = op
		}
	}
	if setupOp == nil || launchOp == nil || awaitOp == nil {
		return false
	}
	// The depth-1 scan above cannot see accfg ops nested in scf.if/scf.for
	// inside the body; a nested launch would commit the rotated setup's
	// *next*-iteration configuration after the rewrite (same phantom-state
	// class as the LaunchReachableAfter guard below — found by differential
	// fuzzing review). Likewise, moving the launch to the top of the body
	// reorders the device's memory effects (the job reads and writes main
	// memory at launch time) with every host memref.load/store that used to
	// precede it — there is no alias analysis, so any host memory op in the
	// body blocks pipelining. Both hazards are the shared interference
	// query; the toggled walk below exists only for the bug-replay tests.
	unsafe := false
	for _, op := range body.Ops() {
		if op == setupOp || op == launchOp || op == awaitOp {
			continue
		}
		if !overlapSkipNestedGuard && !overlapSkipMemrefGuard {
			if analysis.SubtreePipelineHazard(op) {
				unsafe = true
			}
			continue
		}
		ir.Walk(op, func(o *ir.Op) {
			switch o.Name() {
			case accfg.OpSetup, accfg.OpLaunch, accfg.OpAwait:
				if !overlapSkipNestedGuard {
					unsafe = true
				}
			default:
				if analysis.HostMemoryOp(o) && !overlapSkipMemrefGuard {
					unsafe = true
				}
			}
		})
	}
	if unsafe {
		return false
	}
	s, _ := accfg.AsSetup(setupOp)
	if !concurrent(s.Accelerator()) {
		return false
	}
	l, _ := accfg.AsLaunch(launchOp)
	a, _ := accfg.AsAwait(awaitOp)

	// Shape requirements: setup chains from the loop-carried state arg,
	// launch launches the setup's state, await awaits that launch, and the
	// yield carries the setup's state back around.
	if !s.HasInState() {
		return false
	}
	arg := s.InState()
	if !arg.IsBlockArg() || arg.OwnerBlock() != body {
		return false
	}
	argIdx := arg.ResultIndex() - 1
	if argIdx < 0 {
		return false
	}
	if l.State() != s.State() || a.Token() != l.Token() {
		return false
	}
	if argIdx >= yield.NumOperands() || yield.Operand(argIdx) != s.State() {
		return false
	}
	if !setupOp.IsBefore(launchOp) || !launchOp.IsBefore(awaitOp) {
		return false
	}
	// Only state-preserving ops may sit between setup and launch, since the
	// launch moves above them.
	for o := setupOp.Next(); o != nil && o != launchOp; o = o.Next() {
		if accfg.EffectsOf(o) == ir.EffectsAll {
			return false
		}
	}
	// The setup's in-loop input slice must be pure so it can be recomputed
	// for iteration i+1. It may only reference the induction variable and
	// the state arg among the loop's block arguments — the prologue clone
	// remaps exactly those two.
	slice, ok := pureInputSlice(setupOp, body, map[*ir.Value]bool{
		body.Arg(0): true,
		arg:         true,
	})
	if !ok {
		return false
	}
	// Pipelining leaves the *next* iteration's (phantom) configuration in
	// the staging registers when the loop exits: the rotated in-loop setup
	// computes iteration i+1's fields, and the final iteration's writes are
	// never launched. Any same-accelerator launch that can execute after
	// the loop — later in the function, or on the next iteration of an
	// enclosing loop — would observe that phantom state instead of the last
	// real configuration, so the rewrite must bail (found by differential
	// fuzzing; the paper's workloads always pipeline the last launch site).
	if !overlapSkipPhantomGuard && analysis.LaunchReachableAfter(loop, s.Accelerator()) {
		return false
	}

	iv := body.Arg(0)
	lb := loop.Operand(0)
	step := loop.Operand(2)

	// 1. Prologue: clone the setup (and its in-loop slice) before the loop,
	//    with iv -> lb and the state arg -> the loop's init state.
	init := loop.Operand(3 + argIdx)
	mapping := map[*ir.Value]*ir.Value{iv: lb, arg: init}
	pb := ir.Before(loop)
	for _, o := range slice {
		pb.Insert(o.Clone(mapping))
	}
	proSetup := setupOp.Clone(mapping)
	pb.Insert(proSetup)
	loop.SetOperand(3+argIdx, proSetup.Result(0))

	// 2. Launch now reads the loop-carried state and moves to the top of
	//    the body (before the setup and its input slice).
	launchOp.SetOperand(0, arg)
	first := body.First()
	if first != launchOp {
		launchOp.MoveBefore(first)
	}

	// 3. The in-loop setup computes the *next* iteration's configuration:
	//    clone its input slice with iv -> iv+step, after the launch.
	ib := ir.After(launchOp)
	ivNext := ib.Create("arith.addi", []*ir.Value{iv, step}, []ir.Type{iv.Type()}).Result(0)
	ivNext.SetName("i_next")
	remap := map[*ir.Value]*ir.Value{iv: ivNext}
	for _, o := range slice {
		cl := o.Clone(remap)
		cl.MoveBefore(setupOp)
		// Clone returns a detached op; move it into place before setup.
	}
	for i, operand := range setupOp.Operands() {
		if nv, ok := remap[operand]; ok {
			setupOp.SetOperand(i, nv)
		}
	}
	// The original slice ops may now be dead; greedy DCE cleans them later.
	return true
}

// pureInputSlice returns the ops inside body that (transitively) compute the
// setup's field operands, in program order. ok=false when any of them is
// impure, carries regions, or references a block argument outside
// allowedArgs.
func pureInputSlice(setupOp *ir.Op, body *ir.Block, allowedArgs map[*ir.Value]bool) ([]*ir.Op, bool) {
	needed := map[*ir.Op]bool{}
	var visit func(v *ir.Value) bool
	visit = func(v *ir.Value) bool {
		if v.IsBlockArg() {
			if v.OwnerBlock() == body && !allowedArgs[v] {
				return false
			}
			return true // remapped (iv, state arg) or defined in an enclosing scope
		}
		def := v.DefiningOp()
		if def == nil || def.Block() != body {
			return true // defined outside the loop: invariant
		}
		if needed[def] {
			return true
		}
		if !ir.IsPure(def) || def.NumRegions() != 0 {
			return false
		}
		needed[def] = true
		for _, o := range def.Operands() {
			if !visit(o) {
				return false
			}
		}
		return true
	}
	for _, f := range setup(setupOp).Fields() {
		if !visit(f.Value) {
			return nil, false
		}
	}
	var out []*ir.Op
	for _, o := range body.Ops() {
		if needed[o] {
			out = append(out, o)
		}
	}
	return out, true
}

func setup(op *ir.Op) accfg.Setup {
	s, _ := accfg.AsSetup(op)
	return s
}

// overlapBlock applies the straight-line overlap rewrite within one block:
// setups whose input state is in flight (launched, await pending later in
// the block before the setup) move in front of the await.
func overlapBlock(blk *ir.Block, concurrent func(string) bool) bool {
	changed := false
	for _, op := range blk.Ops() {
		s, ok := accfg.AsSetup(op)
		if !ok || op.Block() != blk || !s.HasInState() || !concurrent(s.Accelerator()) {
			continue
		}
		// Find a launch of the setup's input state earlier in this block.
		launchOp := findLaunchOf(s.InState(), blk)
		if launchOp == nil || !launchOp.IsBefore(op) {
			continue
		}
		// Find the await of that launch between the launch and the setup.
		l, _ := accfg.AsLaunch(launchOp)
		var awaitOp *ir.Op
		for _, u := range l.Token().Uses() {
			if u.Op.Name() == accfg.OpAwait && u.Op.Block() == blk {
				awaitOp = u.Op
			}
		}
		if awaitOp == nil || !awaitOp.IsBefore(op) {
			continue
		}
		// Everything the setup needs that is defined between the await and
		// the setup must be pure and moves along.
		movable, ok := movableSlice(op, awaitOp)
		if !ok {
			continue
		}
		// All skipped-over ops must preserve accelerator state, and none of
		// them may interact with this accelerator's staging registers:
		// hopping over another setup would reorder configuration writes, and
		// hopping over a launch would make that launch commit the moved
		// setup's values instead of the configuration it launched with in
		// program order (found by differential fuzzing).
		safe := true
		for o := awaitOp; o != nil && o != op; o = o.Next() {
			if movableContains(movable, o) || o == awaitOp {
				continue
			}
			if accfg.EffectsOf(o) == ir.EffectsAll {
				safe = false
				break
			}
			if !overlapSkipStagingGuard && analysis.TouchesStaging(o, s.Accelerator()) {
				safe = false
				break
			}
		}
		if !safe {
			continue
		}
		for _, mo := range movable {
			mo.MoveBefore(awaitOp)
		}
		op.MoveBefore(awaitOp)
		changed = true
	}
	return changed
}

func movableContains(ops []*ir.Op, op *ir.Op) bool {
	for _, o := range ops {
		if o == op {
			return true
		}
	}
	return false
}

// findLaunchOf returns the accfg.launch in blk whose state operand is state.
func findLaunchOf(state *ir.Value, blk *ir.Block) *ir.Op {
	for _, u := range state.Uses() {
		if u.Op.Name() == accfg.OpLaunch && u.Op.Block() == blk {
			return u.Op
		}
	}
	return nil
}

// movableSlice collects the pure ops strictly between barrier and op that
// op's operands transitively depend on, in program order. ok=false when an
// impure dependency blocks the move.
func movableSlice(op *ir.Op, barrier *ir.Op) ([]*ir.Op, bool) {
	blk := op.Block()
	between := map[*ir.Op]bool{}
	for o := barrier.Next(); o != nil && o != op; o = o.Next() {
		between[o] = true
	}
	needed := map[*ir.Op]bool{}
	var visit func(v *ir.Value) bool
	visit = func(v *ir.Value) bool {
		def := v.DefiningOp()
		if def == nil || !between[def] {
			return true
		}
		if needed[def] {
			return true
		}
		if !ir.IsPure(def) || def.NumRegions() != 0 {
			return false
		}
		needed[def] = true
		for _, o := range def.Operands() {
			if !visit(o) {
				return false
			}
		}
		return true
	}
	for _, operand := range op.Operands() {
		if !visit(operand) {
			return nil, false
		}
	}
	var out []*ir.Op
	for o := blk.First(); o != nil; o = o.Next() {
		if needed[o] {
			out = append(out, o)
		}
	}
	return out, true
}
