package passes_test

// Golden-file tests: textual IR inputs under testdata/ run through pass
// pipelines via the parser — the same path cmd/cwopt exercises. Assertions
// are structural (op counts, shapes) rather than byte-exact text, so the
// tests stay robust against printer cosmetics.

import (
	"os"
	"path/filepath"
	"testing"

	"configwall/internal/dialects/accfg"
	"configwall/internal/ir"
	"configwall/internal/passes"
)

func parseTestdata(t *testing.T, name string) *ir.Module {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		t.Fatalf("parsing %s: %v", name, err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("%s does not verify: %v", name, err)
	}
	return m
}

func TestGoldenFigure9DedupPipeline(t *testing.T) {
	m := parseTestdata(t, "figure9.ir")
	runPipeline(t, m,
		passes.TraceStates(),
		passes.HoistLoopInvariantFields(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
	)
	// Figure 9 middle block: a pre-loop setup carrying A, an in-loop setup
	// carrying only i.
	var preFields, inFields []string
	m.Walk(func(op *ir.Op) {
		s, ok := accfg.AsSetup(op)
		if !ok {
			return
		}
		if s.Op.ParentOp().Name() == "scf.for" {
			inFields = s.FieldNames()
		} else {
			preFields = s.FieldNames()
		}
	})
	if len(preFields) != 1 || preFields[0] != "A" {
		t.Errorf("pre-loop fields = %v, want [A]\n%s", preFields, ir.PrintModule(m))
	}
	if len(inFields) != 1 || inFields[0] != "i" {
		t.Errorf("in-loop fields = %v, want [i]", inFields)
	}
}

func TestGoldenFigure9OverlapPipeline(t *testing.T) {
	m := parseTestdata(t, "figure9.ir")
	runPipeline(t, m,
		passes.TraceStates(),
		passes.HoistLoopInvariantFields(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
		passes.Overlap(func(string) bool { return true }),
		passes.Canonicalize(),
	)
	// Figure 9 third block: the launch reads the loop-carried state.
	var launch accfg.Launch
	m.Walk(func(op *ir.Op) {
		if l, ok := accfg.AsLaunch(op); ok {
			launch = l
		}
	})
	if launch.Op == nil {
		t.Fatal("launch disappeared")
	}
	if !launch.State().IsBlockArg() {
		t.Errorf("launch must read the loop-carried state after pipelining:\n%s", ir.PrintModule(m))
	}
	// Round-trip the result through the printer/parser to prove the
	// optimized IR stays well-formed text.
	text := ir.PrintModule(m)
	m2, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("optimized IR does not reparse: %v\n%s", err, text)
	}
	if err := ir.Verify(m2); err != nil {
		t.Fatalf("reparsed optimized IR does not verify: %v", err)
	}
}

func TestGoldenBranchSinking(t *testing.T) {
	m := parseTestdata(t, "branches.ir")
	runPipeline(t, m,
		passes.SinkSetupsIntoBranches(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
	)
	// The trailing setup is gone; each branch holds one merged setup; the
	// then-branch writes x once (value 1 was redundant there) and y.
	counts := map[string]int{}
	m.Walk(func(op *ir.Op) {
		if op.Name() == accfg.OpSetup {
			counts[op.ParentOp().Name()]++
		}
	})
	if counts["fnc.func"] != 0 {
		t.Errorf("top-level setups = %d, want 0 (sunk into branches)\n%s",
			counts["fnc.func"], ir.PrintModule(m))
	}
	if counts["scf.if"] != 2 {
		t.Errorf("branch setups = %d, want 2", counts["scf.if"])
	}
}
