package passes_test

// Golden-file tests: textual IR inputs under testdata/ run through pass
// pipelines via the parser — the same path cmd/cwopt exercises. Assertions
// are structural (op counts, shapes) rather than byte-exact text, so the
// tests stay robust against printer cosmetics.

import (
	"os"
	"path/filepath"
	"testing"

	"configwall/internal/dialects/accfg"
	"configwall/internal/ir"
	"configwall/internal/passes"
)

func parseTestdata(t *testing.T, name string) *ir.Module {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		t.Fatalf("parsing %s: %v", name, err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("%s does not verify: %v", name, err)
	}
	return m
}

func TestGoldenFigure9DedupPipeline(t *testing.T) {
	m := parseTestdata(t, "figure9.ir")
	runPipeline(t, m,
		passes.TraceStates(),
		passes.HoistLoopInvariantFields(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
	)
	// Figure 9 middle block: a pre-loop setup carrying A, an in-loop setup
	// carrying only i.
	var preFields, inFields []string
	m.Walk(func(op *ir.Op) {
		s, ok := accfg.AsSetup(op)
		if !ok {
			return
		}
		if s.Op.ParentOp().Name() == "scf.for" {
			inFields = s.FieldNames()
		} else {
			preFields = s.FieldNames()
		}
	})
	if len(preFields) != 1 || preFields[0] != "A" {
		t.Errorf("pre-loop fields = %v, want [A]\n%s", preFields, ir.PrintModule(m))
	}
	if len(inFields) != 1 || inFields[0] != "i" {
		t.Errorf("in-loop fields = %v, want [i]", inFields)
	}
}

func TestGoldenFigure9OverlapPipeline(t *testing.T) {
	m := parseTestdata(t, "figure9.ir")
	runPipeline(t, m,
		passes.TraceStates(),
		passes.HoistLoopInvariantFields(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
		passes.Overlap(func(string) bool { return true }),
		passes.Canonicalize(),
	)
	// Figure 9 third block: the launch reads the loop-carried state.
	var launch accfg.Launch
	m.Walk(func(op *ir.Op) {
		if l, ok := accfg.AsLaunch(op); ok {
			launch = l
		}
	})
	if launch.Op == nil {
		t.Fatal("launch disappeared")
	}
	if !launch.State().IsBlockArg() {
		t.Errorf("launch must read the loop-carried state after pipelining:\n%s", ir.PrintModule(m))
	}
	// Round-trip the result through the printer/parser to prove the
	// optimized IR stays well-formed text.
	text := ir.PrintModule(m)
	m2, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("optimized IR does not reparse: %v\n%s", err, text)
	}
	if err := ir.Verify(m2); err != nil {
		t.Fatalf("reparsed optimized IR does not verify: %v", err)
	}
}

func TestGoldenHoistPipeline(t *testing.T) {
	m := parseTestdata(t, "hoist.ir")
	runPipeline(t, m,
		passes.TraceStates(),
		passes.HoistLoopInvariantFields(),
	)
	// The loop-invariant size/stride fields move to a pre-loop setup; the
	// per-iteration address stays in the loop.
	var preFields, inFields []string
	m.Walk(func(op *ir.Op) {
		s, ok := accfg.AsSetup(op)
		if !ok {
			return
		}
		if s.Op.ParentOp().Name() == "scf.for" {
			inFields = s.FieldNames()
		} else if s.NumFields() > 0 {
			preFields = s.FieldNames()
		}
	})
	if len(preFields) != 2 || preFields[0] != "size" || preFields[1] != "stride" {
		t.Errorf("pre-loop fields = %v, want [size stride]\n%s", preFields, ir.PrintModule(m))
	}
	if len(inFields) != 1 || inFields[0] != "addr" {
		t.Errorf("in-loop fields = %v, want [addr]\n%s", inFields, ir.PrintModule(m))
	}
}

func TestGoldenOverlapPipeline(t *testing.T) {
	m := parseTestdata(t, "overlap.ir")
	runPipeline(t, m,
		passes.TraceStates(),
		passes.SinkSetupsIntoBranches(),
		passes.HoistLoopInvariantFields(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
		passes.Overlap(func(string) bool { return true }),
	)
	// Software pipelining (Figure 9, third block): the launch is the first
	// op of the body and reads the loop-carried state; a prologue setup
	// configures iteration 0 in front of the loop.
	var loop *ir.Op
	m.Walk(func(op *ir.Op) {
		if op.Name() == "scf.for" {
			loop = op
		}
	})
	if loop == nil {
		t.Fatal("loop disappeared")
	}
	first := loop.Region(0).Block().First()
	l, ok := accfg.AsLaunch(first)
	if !ok {
		t.Fatalf("body does not start with the launch (starts with %s):\n%s", first.Name(), ir.PrintModule(m))
	}
	if !l.State().IsBlockArg() {
		t.Errorf("pipelined launch must read the loop-carried state:\n%s", ir.PrintModule(m))
	}
	// Two field-carrying setups sit in front of the loop — the hoisted
	// loop-invariant len and the pipelining prologue's addr for iteration 0
	// — while the rotated in-loop setup rewrites only the varying addr.
	var preFields [][]string
	var inFields []string
	m.Walk(func(op *ir.Op) {
		s, ok := accfg.AsSetup(op)
		if !ok || s.NumFields() == 0 {
			return
		}
		if s.Op.ParentOp().Name() == "scf.for" {
			inFields = s.FieldNames()
		} else {
			preFields = append(preFields, s.FieldNames())
		}
	})
	if len(preFields) != 2 {
		t.Fatalf("pre-loop field-carrying setups = %v, want [[len] [addr]]\n%s", preFields, ir.PrintModule(m))
	}
	if len(preFields[0]) != 1 || preFields[0][0] != "len" || len(preFields[1]) != 1 || preFields[1][0] != "addr" {
		t.Errorf("pre-loop setups = %v, want hoisted [len] then prologue [addr]", preFields)
	}
	if len(inFields) != 1 || inFields[0] != "addr" {
		t.Errorf("in-loop fields = %v, want [addr]", inFields)
	}
}

func TestGoldenOverlapBailsOnNestedLaunch(t *testing.T) {
	m := parseTestdata(t, "overlap_nested.ir")
	runPipeline(t, m,
		passes.TraceStates(),
		passes.Overlap(func(string) bool { return true }),
	)
	// The conditional launch nested in the body would commit the rotated
	// setup's next-iteration (phantom) configuration if the loop were
	// pipelined, so the pass must leave the loop alone: the body still
	// starts with the setup's input slice, not with a launch.
	var loop *ir.Op
	m.Walk(func(op *ir.Op) {
		if op.Name() == "scf.for" {
			loop = op
		}
	})
	if loop == nil {
		t.Fatal("loop disappeared")
	}
	if first := loop.Region(0).Block().First(); first.Name() == accfg.OpLaunch {
		t.Fatalf("loop with a nested same-accelerator launch was pipelined:\n%s", ir.PrintModule(m))
	}
	if loop.NumOperands() != 4 {
		// TraceStates added exactly the loop-carried state; the pipelining
		// prologue would have rewired it to a cloned setup.
		t.Fatalf("unexpected loop operands: %d", loop.NumOperands())
	}
	init := loop.Operand(3).DefiningOp()
	if s, ok := accfg.AsSetup(init); !ok || s.NumFields() != 0 {
		t.Fatalf("loop init state must still be the empty trace anchor, got %s:\n%s", init.Name(), ir.PrintModule(m))
	}
}

func TestGoldenSinkIntoBranchesInLoop(t *testing.T) {
	m := parseTestdata(t, "sink.ir")
	runPipeline(t, m,
		passes.SinkSetupsIntoBranches(),
		passes.Dedup(),
		passes.RemoveEmptySetups(),
	)
	// The trailing loop-body setup sinks into both branches of the nested
	// scf.if, restoring a linear chain per path; per-branch deduplication
	// then drops the x=1 rewrite only in the then-branch (which already
	// wrote x=1), while the else-branch (x=2) must keep it.
	counts := map[string]int{}
	var thenLast, elseLast []string
	m.Walk(func(op *ir.Op) {
		s, ok := accfg.AsSetup(op)
		if !ok {
			return
		}
		parent := s.Op.ParentOp()
		counts[parent.Name()]++
		if parent.Name() == "scf.if" {
			if parent.Region(0).Block() == s.Op.Block() {
				thenLast = s.FieldNames()
			} else {
				elseLast = s.FieldNames()
			}
		}
	})
	if counts["scf.for"] != 0 {
		t.Errorf("loop-body setups = %d, want 0 (sunk into branches)\n%s", counts["scf.for"], ir.PrintModule(m))
	}
	if counts["scf.if"] != 4 {
		t.Errorf("branch setups = %d, want 4\n%s", counts["scf.if"], ir.PrintModule(m))
	}
	if len(thenLast) != 1 || thenLast[0] != "y" {
		t.Errorf("then-branch sunk fields = %v, want [y] (x=1 was redundant there)\n%s", thenLast, ir.PrintModule(m))
	}
	if len(elseLast) != 2 || elseLast[0] != "x" || elseLast[1] != "y" {
		t.Errorf("else-branch sunk fields = %v, want [x y] (x=1 overwrites x=2)\n%s", elseLast, ir.PrintModule(m))
	}
}

func TestGoldenBranchSinking(t *testing.T) {
	m := parseTestdata(t, "branches.ir")
	runPipeline(t, m,
		passes.SinkSetupsIntoBranches(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
	)
	// The trailing setup is gone; each branch holds one merged setup; the
	// then-branch writes x once (value 1 was redundant there) and y.
	counts := map[string]int{}
	m.Walk(func(op *ir.Op) {
		if op.Name() == accfg.OpSetup {
			counts[op.ParentOp().Name()]++
		}
	})
	if counts["fnc.func"] != 0 {
		t.Errorf("top-level setups = %d, want 0 (sunk into branches)\n%s",
			counts["fnc.func"], ir.PrintModule(m))
	}
	if counts["scf.if"] != 2 {
		t.Errorf("branch setups = %d, want 2", counts["scf.if"])
	}
}
