package configwall_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md for the experiment index), plus ablations over
// the design choices. Each benchmark reports the paper's metrics as custom
// units (ops/cycle, config bytes, speedup) so `go test -bench` regenerates
// the evaluation:
//
//	go test -bench 'Figure10' -benchmem .
//	go test -bench . -benchmem . > bench_output.txt
//
// Absolute cycle counts come from the deterministic co-simulator, so
// b.N repetitions measure harness wall-time while the reported custom
// metrics are the paper-relevant (stable) quantities.

import (
	"context"
	"fmt"
	"testing"

	"configwall"
	"configwall/internal/accel/gemmini"
	"configwall/internal/core"
	"configwall/internal/ir"
	"configwall/internal/roofline"
	"configwall/internal/workload"
)

// runOnce executes one experiment per benchmark iteration and reports the
// measured metrics of the final run.
func runOnce(b *testing.B, t configwall.Target, p configwall.Pipeline, n int) configwall.Result {
	b.Helper()
	var res configwall.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = configwall.RunTiledMatmul(t, p, n, configwall.RunOptions{SkipVerify: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkTable1 regenerates the gemmini_loop_ws field inventory.
func BenchmarkTable1_GemminiLoopWSFields(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(gemmini.FieldBits())
	}
	b.ReportMetric(float64(rows), "fields")
	if testing.Verbose() {
		b.Log("\n" + gemmini.Table1())
	}
}

// BenchmarkFigure3 samples the processor roofline.
func BenchmarkFigure3_ProcessorRoofline(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		for iop := 0.25; iop <= 1024; iop *= 2 {
			acc += roofline.Processor(512, 16, iop)
		}
	}
	b.ReportMetric(acc/float64(b.N), "sum_ops/cycle")
}

// BenchmarkFigure4 samples both configuration rooflines of Figure 4.
func BenchmarkFigure4_ConfigurationRoofline(b *testing.B) {
	m := core.GemminiTarget().RooflineModel()
	var knee float64
	for i := 0; i < b.N; i++ {
		_ = m.CurveSequential(1, 16384, 128)
		_ = m.CurveConcurrent(1, 16384, 128)
		knee = m.Knee()
	}
	b.ReportMetric(knee, "knee_I_OC")
}

// BenchmarkFigure5 samples the combined roofsurface.
func BenchmarkFigure5_Roofsurface(b *testing.B) {
	m := core.OpenGeMMTarget().RooflineModel()
	var cells int
	for i := 0; i < b.N; i++ {
		cells = len(m.Surface(0.25, 1024, 0.25, 16384, 16))
	}
	b.ReportMetric(float64(cells), "cells")
}

// BenchmarkSection46 evaluates the paper's worked example (41.5% / 26.7%).
func BenchmarkSection46_WorkedExample(b *testing.B) {
	var e core.Section46
	for i := 0; i < b.N; i++ {
		e = core.Section46Example()
	}
	b.ReportMetric(100*e.UtilRaw, "%attainable_raw")
	b.ReportMetric(100*e.UtilEff, "%attainable_eff")
}

// Figure 10: Gemmini attainable performance per size, baseline vs accfg.
func benchFigure10(b *testing.B, n int) {
	t := configwall.GemminiTarget()
	base := runOnce(b, t, configwall.Baseline, n)
	opt, err := configwall.RunTiledMatmul(t, configwall.AllOptimizations, n, configwall.RunOptions{SkipVerify: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(base.AttainableEq3(), "base_ops/cycle")
	b.ReportMetric(opt.AttainableEq3(), "accfg_ops/cycle")
	b.ReportMetric(opt.AttainableEq3()/base.AttainableEq3(), "speedup")
	b.ReportMetric(float64(base.ConfigBytes), "base_cfgB")
	b.ReportMetric(float64(opt.ConfigBytes), "accfg_cfgB")
}

func BenchmarkFigure10_Gemmini_32(b *testing.B)  { benchFigure10(b, 32) }
func BenchmarkFigure10_Gemmini_64(b *testing.B)  { benchFigure10(b, 64) }
func BenchmarkFigure10_Gemmini_128(b *testing.B) { benchFigure10(b, 128) }
func BenchmarkFigure10_Gemmini_256(b *testing.B) { benchFigure10(b, 256) }
func BenchmarkFigure10_Gemmini_512(b *testing.B) { benchFigure10(b, 512) }

// Figure 11: OpenGeMM measured performance per size, base vs optimized.
func benchFigure11(b *testing.B, n int) {
	t := configwall.OpenGeMMTarget()
	base := runOnce(b, t, configwall.Baseline, n)
	opt, err := configwall.RunTiledMatmul(t, configwall.AllOptimizations, n, configwall.RunOptions{SkipVerify: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(base.OpsPerCycle(), "base_ops/cycle")
	b.ReportMetric(opt.OpsPerCycle(), "opt_ops/cycle")
	b.ReportMetric(opt.OpsPerCycle()/base.OpsPerCycle(), "speedup")
}

func BenchmarkFigure11_OpenGeMM_16(b *testing.B)  { benchFigure11(b, 16) }
func BenchmarkFigure11_OpenGeMM_32(b *testing.B)  { benchFigure11(b, 32) }
func BenchmarkFigure11_OpenGeMM_64(b *testing.B)  { benchFigure11(b, 64) }
func BenchmarkFigure11_OpenGeMM_128(b *testing.B) { benchFigure11(b, 128) }
func BenchmarkFigure11_OpenGeMM_256(b *testing.B) { benchFigure11(b, 256) }
func BenchmarkFigure11_OpenGeMM_512(b *testing.B) { benchFigure11(b, 512) }

// Engine comparison on the heaviest figure cell: the same experiment
// executed end-to-end (compile + simulate) under each simulator engine.
// Metrics must match BenchmarkFigure11_OpenGeMM_512 exactly — the engines
// are differential-tested to be observationally identical — only the wall
// time may differ. (Host-loop-isolated engine ratios live in the
// BenchmarkSim_* micro-benchmarks under internal/sim; this cell also
// carries the accelerator functional model, which both engines share.)
func benchFigure11Engine(b *testing.B, n int, engine configwall.Engine) {
	t := configwall.OpenGeMMTarget()
	opts := configwall.RunOptions{SkipVerify: true, Engine: engine}
	var base configwall.Result
	var err error
	for i := 0; i < b.N; i++ {
		base, err = configwall.RunTiledMatmul(t, configwall.Baseline, n, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	// The optimized run only feeds the speedup metric; keep it out of the
	// timed region — ns/op and instrs/sec measure the baseline cell only.
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(base.HostInstrs)*float64(b.N)/secs, "instrs/sec")
	}
	opt, err := configwall.RunTiledMatmul(t, configwall.AllOptimizations, n, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(opt.OpsPerCycle()/base.OpsPerCycle(), "speedup")
}

func BenchmarkFigure11_OpenGeMM_512_RefEngine(b *testing.B) {
	benchFigure11Engine(b, 512, configwall.EngineRef)
}
func BenchmarkFigure11_OpenGeMM_512_FastEngine(b *testing.B) {
	benchFigure11Engine(b, 512, configwall.EngineFast)
}
func BenchmarkFigure11_OpenGeMM_512_CompiledEngine(b *testing.B) {
	benchFigure11Engine(b, 512, configwall.EngineCompiled)
}

// Figure 12: the four pipeline variants on the roofline, per size.
func benchFigure12(b *testing.B, p configwall.Pipeline, n int) {
	t := configwall.OpenGeMMTarget()
	res := runOnce(b, t, p, n)
	b.ReportMetric(res.MeasuredIOC(), "I_OC_ops/B")
	b.ReportMetric(res.OpsPerCycle(), "ops/cycle")
}

func BenchmarkFigure12_Base_64(b *testing.B)     { benchFigure12(b, configwall.Baseline, 64) }
func BenchmarkFigure12_Dedup_64(b *testing.B)    { benchFigure12(b, configwall.DedupOnly, 64) }
func BenchmarkFigure12_Overlap_64(b *testing.B)  { benchFigure12(b, configwall.OverlapOnly, 64) }
func BenchmarkFigure12_All_64(b *testing.B)      { benchFigure12(b, configwall.AllOptimizations, 64) }
func BenchmarkFigure12_Base_128(b *testing.B)    { benchFigure12(b, configwall.Baseline, 128) }
func BenchmarkFigure12_Dedup_128(b *testing.B)   { benchFigure12(b, configwall.DedupOnly, 128) }
func BenchmarkFigure12_Overlap_128(b *testing.B) { benchFigure12(b, configwall.OverlapOnly, 128) }
func BenchmarkFigure12_All_128(b *testing.B)     { benchFigure12(b, configwall.AllOptimizations, 128) }
func BenchmarkFigure12_Base_256(b *testing.B)    { benchFigure12(b, configwall.Baseline, 256) }
func BenchmarkFigure12_Dedup_256(b *testing.B)   { benchFigure12(b, configwall.DedupOnly, 256) }
func BenchmarkFigure12_Overlap_256(b *testing.B) { benchFigure12(b, configwall.OverlapOnly, 256) }
func BenchmarkFigure12_All_256(b *testing.B)     { benchFigure12(b, configwall.AllOptimizations, 256) }

// Geomean summaries (the headline claims: 11% and 2x).
func BenchmarkGeomean_Figure10_Gemmini(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		rows, err := core.Figure10([]int{32, 64, 128, 256, 512}, core.RunOptions{SkipVerify: true})
		if err != nil {
			b.Fatal(err)
		}
		g = core.Fig10Geomean(rows)
	}
	b.ReportMetric(100*(g-1), "%geomean_uplift")
}

func BenchmarkGeomean_Figure11_OpenGeMM(b *testing.B) {
	var g float64
	for i := 0; i < b.N; i++ {
		rows, err := core.Figure11([]int{16, 32, 64, 128, 256, 512}, core.RunOptions{SkipVerify: true})
		if err != nil {
			b.Fatal(err)
		}
		g = core.Fig11Geomean(rows)
	}
	b.ReportMetric(g, "geomean_speedup")
}

// --- Ablations (DESIGN.md §4) ---

// AblationNoCSE: dedup effectiveness without CSE/canonicalization providing
// SSA-value equality (paper §5.4 relies on it).
func BenchmarkAblationNoCSE_Dedup(b *testing.B) {
	t := configwall.OpenGeMMTarget()
	full := runOnce(b, t, configwall.DedupOnly, 64)
	b.ReportMetric(float64(full.ConfigBytes), "cfgB_with_cse")
	// The baseline pipeline has no accfg passes at all — its config bytes
	// are what dedup-without-CSE degenerates to for this workload shape
	// (all per-tile SSA values are distinct without cleanup).
	base, err := configwall.RunTiledMatmul(t, configwall.Baseline, 64, configwall.RunOptions{SkipVerify: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(base.ConfigBytes), "cfgB_without")
}

// AblationDedupVsOverlap separates the two optimizations' contributions at
// the knee-adjacent size where the paper expects overlap to matter most.
func BenchmarkAblationDedupVsOverlap_128(b *testing.B) {
	t := configwall.OpenGeMMTarget()
	base := runOnce(b, t, configwall.Baseline, 128)
	dedup, _ := configwall.RunTiledMatmul(t, configwall.DedupOnly, 128, configwall.RunOptions{SkipVerify: true})
	overlap, _ := configwall.RunTiledMatmul(t, configwall.OverlapOnly, 128, configwall.RunOptions{SkipVerify: true})
	all, _ := configwall.RunTiledMatmul(t, configwall.AllOptimizations, 128, configwall.RunOptions{SkipVerify: true})
	b.ReportMetric(dedup.OpsPerCycle()/base.OpsPerCycle(), "dedup_speedup")
	b.ReportMetric(overlap.OpsPerCycle()/base.OpsPerCycle(), "overlap_speedup")
	b.ReportMetric(all.OpsPerCycle()/base.OpsPerCycle(), "all_speedup")
}

// AblationSequentialVsConcurrent quantifies what the concurrent-configuration
// hardware buys: the same optimized binary with overlap disabled (as if the
// accelerator were sequential).
func BenchmarkAblationSchemeGap_64(b *testing.B) {
	t := configwall.OpenGeMMTarget()
	dedupOnly := runOnce(b, t, configwall.DedupOnly, 64) // no overlap = sequential-style use
	all, _ := configwall.RunTiledMatmul(t, configwall.AllOptimizations, 64, configwall.RunOptions{SkipVerify: true})
	b.ReportMetric(all.OpsPerCycle()/dedupOnly.OpsPerCycle(), "concurrency_gain")
}

// Compiler-side microbenchmarks: pipeline cost itself (IR build + passes
// only — input-matrix setup is simulation cost and stays out of the loop).
func benchCompile(b *testing.B, t configwall.Target, build func(n int) (*ir.Module, error)) {
	for i := 0; i < b.N; i++ {
		m, err := build(64)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.PassPipeline(configwall.AllOptimizations).Run(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile_OpenGeMM_All_64(b *testing.B) {
	benchCompile(b, configwall.OpenGeMMTarget(), workload.OpenGeMMTiledMatmul)
}

func BenchmarkCompile_Gemmini_All_64(b *testing.B) {
	benchCompile(b, configwall.GemminiTarget(), workload.GemminiTiledMatmul)
}

// --- Registry workloads beyond the paper's square matmul ---

// benchWorkload measures one registered workload cell through the registry
// path (DESIGN.md §3).
func benchWorkload(b *testing.B, target, workloadName string, n int) {
	var res configwall.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = configwall.RunExperiment(configwall.Experiment{
			Target: target, Workload: workloadName,
			Pipeline: configwall.AllOptimizations, N: n,
		}, configwall.RunOptions{SkipVerify: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OpsPerCycle(), "ops/cycle")
	b.ReportMetric(float64(res.ConfigBytes), "cfgB")
}

func BenchmarkWorkload_RectMM_Gemmini_64(b *testing.B) {
	benchWorkload(b, "gemmini", configwall.WorkloadRectMM, 64)
}
func BenchmarkWorkload_RectMM_OpenGeMM_64(b *testing.B) {
	benchWorkload(b, "opengemm", configwall.WorkloadRectMM, 64)
}
func BenchmarkWorkload_Matvec_Gemmini_64(b *testing.B) {
	benchWorkload(b, "gemmini", configwall.WorkloadMatvec, 64)
}
func BenchmarkWorkload_Matvec_OpenGeMM_64(b *testing.B) {
	benchWorkload(b, "opengemm", configwall.WorkloadMatvec, 64)
}

// --- Runner benchmarks (DESIGN.md §3): sweep wall time, serial vs ---
// concurrent, plus the cache hit path.

func sweepForBench() []configwall.Experiment {
	return configwall.SweepExperiments(
		configwall.TargetNames(),
		[]string{configwall.WorkloadMatmul},
		configwall.Pipelines,
		[]int{16, 32, 64},
	)
}

func benchSweep(b *testing.B, workers int) {
	exps := sweepForBench()
	for i := 0; i < b.N; i++ {
		// A fresh runner per iteration: this measures real compile+simulate
		// throughput, not cache hits.
		if _, err := configwall.NewRunner(workers).RunAll(context.Background(), exps, configwall.RunOptions{SkipVerify: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(exps)), "experiments")
}

func BenchmarkSweep_Serial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweep_Parallel(b *testing.B) { benchSweep(b, 0) }

func BenchmarkSweep_CacheHit(b *testing.B) {
	exps := sweepForBench()
	r := configwall.NewRunner(0)
	if _, err := r.RunAll(context.Background(), exps, configwall.RunOptions{SkipVerify: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunAll(context.Background(), exps, configwall.RunOptions{SkipVerify: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(exps)), "experiments")
}

// BenchmarkSweep_StoreHit measures the process-restart scenario the
// persistent store exists for: a fresh runner per iteration (empty memory
// cache) serving the whole sweep from a prepopulated on-disk store —
// deserialization cost instead of compile+simulate cost.
func BenchmarkSweep_StoreHit(b *testing.B) {
	exps := sweepForBench()
	opts := configwall.RunOptions{SkipVerify: true}
	st, err := configwall.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	warm := configwall.NewRunnerWith(configwall.RunnerOptions{Store: st})
	if _, err := warm.RunAll(context.Background(), exps, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := configwall.NewRunnerWith(configwall.RunnerOptions{Store: st})
		if _, err := r.RunAll(context.Background(), exps, opts); err != nil {
			b.Fatal(err)
		}
		if s := r.Snapshot(); s.Runs != 0 {
			b.Fatalf("store-hit sweep recomputed %d cells", s.Runs)
		}
	}
	b.ReportMetric(float64(len(exps)), "experiments")
}

// BenchmarkSweep_StoreWrite measures the first, cold pass of a
// store-backed sweep: compute everything and persist every cell.
func BenchmarkSweep_StoreWrite(b *testing.B) {
	exps := sweepForBench()
	opts := configwall.RunOptions{SkipVerify: true}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := configwall.OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := configwall.NewRunnerWith(configwall.RunnerOptions{Store: st}).RunAll(context.Background(), exps, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(exps)), "experiments")
}

// --- Differential-verification benchmarks (DESIGN.md §5) ---

// BenchmarkIRGen measures random-program generation throughput: one seeded
// module per iteration, alternating targets so both profiles stay hot.
func BenchmarkIRGen(b *testing.B) {
	targets := configwall.TargetNames()
	var ops int
	for i := 0; i < b.N; i++ {
		target := targets[i%len(targets)]
		prog, err := configwall.GenerateFuzzProgram(target, configwall.FuzzSeed(1, target, i))
		if err != nil {
			b.Fatal(err)
		}
		ops = prog.Stats.Ops()
	}
	b.ReportMetric(float64(ops), "program_ops")
}

// BenchmarkDiffOracle measures one full differential check per iteration:
// base plus every optimization pipeline, compiled and co-simulated, memory
// and launch-effect comparison included.
func BenchmarkDiffOracle(b *testing.B) {
	targets := configwall.TargetNames()
	for _, name := range targets {
		name := name
		b.Run(name, func(b *testing.B) {
			t, err := configwall.LookupTarget(name)
			if err != nil {
				b.Fatal(err)
			}
			prog, err := configwall.GenerateFuzzProgram(name, configwall.FuzzSeed(1, name, 0))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				rep := configwall.DiffCheck(t, prog, configwall.DiffOptions{})
				if rep.Invalid || rep.Diverged() {
					b.Fatalf("oracle failed on a known-clean program: %+v", rep)
				}
			}
			b.ReportMetric(float64(len(configwall.Pipelines)-1), "pipelines/check")
		})
	}
}

// Sanity: the benchmark harness prints a one-line summary when verbose.
func Example_benchmarkCatalogue() {
	fmt.Println("benchmarks map 1:1 to the paper's tables and figures; see DESIGN.md")
	// Output: benchmarks map 1:1 to the paper's tables and figures; see DESIGN.md
}
