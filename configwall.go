// Package configwall reproduces "The Configuration Wall: Characterization
// and Elimination of Accelerator Configuration Overhead" (ASPLOS 2026) as a
// self-contained Go library.
//
// It bundles three layers:
//
//   - A compiler: an SSA IR with the paper's accfg dialect
//     (setup/launch/await), the configuration-deduplication and
//     configuration–computation-overlap passes, and lowerings to two
//     accelerator command-stream dialects.
//   - A platform simulator: an RV64-subset host co-simulated with
//     Gemmini-style (sequential configuration) and OpenGeMM-style
//     (concurrent configuration) accelerator models, with functional
//     execution and the paper's performance counters.
//   - The configuration roofline model (Eq. 1–5) and an experiment engine
//     that regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	target := configwall.OpenGeMMTarget()
//	res, err := configwall.RunTiledMatmul(target, configwall.AllOptimizations, 64, configwall.RunOptions{})
//	if err != nil { ... }
//	fmt.Printf("%.1f ops/cycle (%.0f%% of peak)\n", res.OpsPerCycle(), 100*res.Utilization())
//
// Sweeps should go through the registry and the concurrent runner: targets
// and workloads are registered by name, experiments key one (target,
// workload, pipeline, n) cell, and a Runner executes batches on a bounded
// worker pool with a per-cell cache and deterministic result ordering:
//
//	r := configwall.NewRunner(0) // 0 = GOMAXPROCS workers
//	exps := configwall.SweepExperiments(
//		configwall.TargetNames(), []string{configwall.WorkloadMatmul},
//		configwall.Pipelines, []int{16, 32, 64})
//	results, err := r.RunAll(ctx, exps, configwall.RunOptions{})
//
// For long-lived use the runner and store can be served over HTTP
// (cmd/cwserve): NewServer wraps a Runner with request coalescing, a
// bounded admission queue and live metrics, NewServeClient talks to such
// a daemon, and LoadGen replays a zipf-skewed request mix against it.
//
// See the examples/ directory for complete programs and DESIGN.md for the
// per-experiment index.
package configwall

import (
	"context"

	"configwall/internal/analytic"
	"configwall/internal/core"
	"configwall/internal/difftest"
	"configwall/internal/fault"
	"configwall/internal/irgen"
	"configwall/internal/roofline"
	"configwall/internal/serve"
	"configwall/internal/sim"
	"configwall/internal/store"
	"configwall/internal/tune"
)

// Pipeline selects which of the paper's optimizations run.
type Pipeline = core.Pipeline

// Pipeline variants (paper Figure 12's base / dedup / overlap / all).
const (
	// Baseline models -O2 on volatile inline assembly.
	Baseline = core.Baseline
	// DedupOnly adds configuration deduplication (paper §5.4).
	DedupOnly = core.DedupOnly
	// OverlapOnly adds configuration-computation overlap (paper §5.5).
	OverlapOnly = core.OverlapOnly
	// AllOptimizations applies the full accfg pipeline.
	AllOptimizations = core.AllOptimizations
)

// Pipelines lists all variants in presentation order.
var Pipelines = core.Pipelines

// Target bundles a simulated accelerator platform and its compiler
// lowering.
type Target = core.Target

// Result carries the measurements of one simulated run.
type Result = core.Result

// RunOptions tweaks experiment execution.
type RunOptions = core.RunOptions

// Engine selects the simulator execution engine for a run.
type Engine = sim.Engine

// Simulator engines. All produce byte-identical results — the
// differential oracle continuously enforces it — but the fast engine
// executes a predecoded program form with block-batched accounting, and the
// compiled engine goes further, translating basic blocks into chains of
// pre-resolved closures (DESIGN.md §6, §8).
const (
	// EngineRef is the reference interpreter.
	EngineRef = sim.EngineRef
	// EngineFast is the predecoded fast engine.
	EngineFast = sim.EngineFast
	// EngineCompiled is the block-compiled engine.
	EngineCompiled = sim.EngineCompiled
)

// EngineByName parses an engine name ("ref", "fast" or "compiled").
func EngineByName(name string) (Engine, error) { return sim.EngineByName(name) }

// EngineNames lists the registered engine names in definition order.
func EngineNames() []string { return sim.EngineNames() }

// GemminiTarget returns the Gemmini-style platform: a 16x16 systolic array
// (512 ops/cycle) with sequential configuration via RoCC custom
// instructions on a Rocket-class RV64 host.
func GemminiTarget() Target { return core.GemminiTarget() }

// OpenGeMMTarget returns the OpenGeMM-style platform: an 8x8x8 GeMM core
// (1024 ops/cycle) with concurrent (staged) configuration via CSRs on a
// tiny in-order host.
func OpenGeMMTarget() Target { return core.OpenGeMMTarget() }

// RunTiledMatmul compiles the n x n tiled matrix multiplication for the
// target under the chosen pipeline, simulates it, verifies the result
// against a golden CPU matmul, and returns the measurements.
func RunTiledMatmul(t Target, p Pipeline, n int, opts RunOptions) (Result, error) {
	return core.RunTiledMatmul(t, p, n, opts)
}

// Workload is a registered kernel family parameterized by sweep size.
type Workload = core.Workload

// Instance is one concrete (workload, target, size) build: the IR module
// plus the buffer plan the engine executes and verifies.
type Instance = core.Instance

// Buffer is one function-argument buffer of a workload instance.
type Buffer = core.Buffer

// Built-in workload names.
const (
	// WorkloadMatmul is the paper's square n x n x n tiled matmul.
	WorkloadMatmul = core.WorkloadMatmul
	// WorkloadRectMM is the rectangular n x 2n x n/2 tiled matmul.
	WorkloadRectMM = core.WorkloadRectMM
	// WorkloadMatvec is the matrix-vector proxy (n x n x 16 panel).
	WorkloadMatvec = core.WorkloadMatvec
)

// RegisterTarget adds an accelerator platform to the registry; duplicate
// names are an error. Registered targets are addressable by name in
// Experiments without touching the engine.
func RegisterTarget(t Target) error { return core.RegisterTarget(t) }

// LookupTarget resolves a registered target by name.
func LookupTarget(name string) (Target, error) { return core.LookupTarget(name) }

// TargetNames lists the registered targets, sorted.
func TargetNames() []string { return core.TargetNames() }

// RegisterWorkload adds a workload to the registry; duplicate names are an
// error.
func RegisterWorkload(w Workload) error { return core.RegisterWorkload(w) }

// LookupWorkload resolves a registered workload by name.
func LookupWorkload(name string) (Workload, error) { return core.LookupWorkload(name) }

// WorkloadNames lists the registered workloads, sorted.
func WorkloadNames() []string { return core.WorkloadNames() }

// Experiment keys one cell of the evaluation sweep by registry names.
type Experiment = core.Experiment

// Runner executes experiments on a bounded worker pool with a
// per-experiment result cache and deterministic (input-order) results.
type Runner = core.Runner

// NewRunner returns a runner with the given worker bound (<= 0 selects
// GOMAXPROCS).
func NewRunner(workers int) *Runner { return core.NewRunner(workers) }

// RunnerOptions configures a Runner beyond the worker bound: an optional
// persistent Store backend and an LRU bound on the in-memory cell map.
type RunnerOptions = core.RunnerOptions

// NewRunnerWith returns a runner configured by opts.
func NewRunnerWith(opts RunnerOptions) *Runner { return core.NewRunnerWith(opts) }

// Store persists experiment results across processes; plug one into a
// Runner via RunnerOptions to make repeated sweeps skip every stored cell.
type Store = core.Store

// CacheStats counts how a Runner satisfied experiment requests (memory
// hits, store hits, fresh runs, evictions); read them with
// Runner.Snapshot.
type CacheStats = core.CacheStats

// DiskStore is the content-addressed on-disk Store implementation:
// schema-versioned fingerprint keys, atomic writes, corruption-tolerant
// loads. Multiple processes may share one directory.
type DiskStore = store.DiskStore

// OpenStore prepares a disk store rooted at dir, creating it if needed.
func OpenStore(dir string) (*DiskStore, error) { return store.Open(dir) }

// StoreEntry is one enumerated disk-store record (see DiskStore.Each and
// DiskStore.Keys): the fingerprint key plus the self-described experiment,
// options and result.
type StoreEntry = store.Entry

// ShardExperiments returns the i-th of m strided partitions of a sweep.
// The m shards are disjoint and cover the sweep exactly, so a grid can be
// split across processes that share a persistent store.
func ShardExperiments(exps []Experiment, i, m int) ([]Experiment, error) {
	return core.Shard(exps, i, m)
}

// RunExperiment resolves an experiment through the registry and executes it
// once, uncached.
func RunExperiment(e Experiment, opts RunOptions) (Result, error) {
	return core.RunExperiment(e, opts)
}

// RunWorkload compiles and simulates a registered workload for a target.
func RunWorkload(t Target, w Workload, p Pipeline, n int, opts RunOptions) (Result, error) {
	return core.Run(t, w, p, n, opts)
}

// SweepExperiments builds the cross product of targets, workloads,
// pipelines and sizes in deterministic row-major order.
func SweepExperiments(targets, workloads []string, pipelines []Pipeline, sizes []int) []Experiment {
	return core.Sweep(targets, workloads, pipelines, sizes)
}

// RooflineModel is the paper's configuration roofline (§4).
type RooflineModel = roofline.Model

// Sequential evaluates Eq. 3: attainable performance of a sequentially
// configured accelerator.
func Sequential(peakOps, bwConfig, ioc float64) float64 {
	return roofline.Sequential(peakOps, bwConfig, ioc)
}

// Concurrent evaluates Eq. 2: attainable performance of a concurrently
// configured accelerator.
func Concurrent(peakOps, bwConfig, ioc float64) float64 {
	return roofline.Concurrent(peakOps, bwConfig, ioc)
}

// EffectiveConfigBW evaluates Eq. 4: configuration bandwidth corrected for
// parameter-calculation time.
func EffectiveConfigBW(configBytes, tCalc, tSet float64) float64 {
	return roofline.EffectiveConfigBW(configBytes, tCalc, tSet)
}

// Geomean returns the geometric mean, the paper's summary statistic.
func Geomean(xs []float64) float64 { return core.Geomean(xs) }

// --- The analytical prediction tier (internal/analytic) ---
//
// The simulation-free third tier of DESIGN.md §10: per-target roofline
// constants plus per-(workload, pipeline) curves fitted against the
// simulator on a seeded training grid and validated on held-out cells.
// A calibrated model plugs into a Runner as its Predictor, unlocking
// multi-fidelity sweeps (screen / top-K) that answer most cells in
// microseconds.

// Fidelity selects a Run's prediction tier: FidelityFull simulates
// (memoized + stored), FidelityScreen answers purely analytically, and
// FidelityCached serves cached ground truth or falls back to a prediction.
type Fidelity = core.Fidelity

// Fidelity tiers; parse wire names with FidelityByName.
const (
	FidelityFull   = core.FidelityFull
	FidelityScreen = core.FidelityScreen
	FidelityCached = core.FidelityCached
)

// FidelityByName resolves a fidelity tier from its wire name ("full",
// "screen" or "cached").
func FidelityByName(name string) (Fidelity, error) { return core.FidelityByName(name) }

// Predictor is a simulation-free estimator of experiment results; install
// one on a Runner (RunnerOptions.Predictor or Runner.SetPredictor) to
// serve FidelityScreen/FidelityCached requests.
type Predictor = core.Predictor

// AnalyticModel is a calibrated analytical-tier model; it implements
// Predictor and round-trips through JSON (WriteFile / ReadAnalyticModel).
type AnalyticModel = analytic.Model

// AnalyticSpec configures one calibration run (grid, seed, error band).
type AnalyticSpec = analytic.Spec

// AnalyticBand is the documented held-out prediction error band.
type AnalyticBand = analytic.Band

// AnalyticReport is the held-out error report of one calibration run;
// Clean reports whether every target honors the band.
type AnalyticReport = analytic.Report

// CalibrateAnalytic fits the analytical tier against the simulator on a
// seeded training grid and validates it on held-out cells. The returned
// model is usable regardless of band violations; callers that must
// enforce the band check Report.Clean.
func CalibrateAnalytic(ctx context.Context, r *Runner, spec AnalyticSpec) (*AnalyticModel, *AnalyticReport, error) {
	return analytic.Calibrate(ctx, r, spec)
}

// ReadAnalyticModel loads a model written by AnalyticModel.WriteFile (or
// cwbench -calibrate).
func ReadAnalyticModel(path string) (*AnalyticModel, error) { return analytic.ReadModel(path) }

// TopKByPredictedPerf ranks predicted results by ops/cycle and returns
// the indices of the k best, in ascending input order — the selection
// half of a multi-fidelity sweep (see Runner.Screen and Runner.RunTopK).
func TopKByPredictedPerf(preds []Result, k int) []int {
	return core.TopKByPredictedPerf(preds, k)
}

// --- Differential verification (internal/irgen + internal/difftest) ---
//
// The fuzzing subsystem behind cmd/cwfuzz: seeded random accfg programs
// checked for observational equivalence between the Baseline pipeline and
// every optimization pipeline on the co-simulator.

// FuzzProgram is one generated differential test case.
type FuzzProgram = irgen.Program

// DiffOptions tunes a differential check.
type DiffOptions = difftest.Options

// DiffReport is the outcome of one differential check.
type DiffReport = difftest.Report

// GenerateFuzzProgram builds the seeded random accfg program for a
// registered target's accelerator. The same (target, seed) pair always
// yields a byte-identical module and inputs.
func GenerateFuzzProgram(target string, seed int64) (FuzzProgram, error) {
	prof, err := irgen.ProfileFor(target)
	if err != nil {
		return FuzzProgram{}, err
	}
	return irgen.Generate(prof, seed)
}

// DiffCheck compiles and co-simulates the program through Baseline and
// every optimization pipeline, asserting observational equivalence and the
// metamorphic counter bounds.
func DiffCheck(t Target, prog FuzzProgram, opts DiffOptions) DiffReport {
	return difftest.Check(t, prog, opts)
}

// FuzzSeed derives the per-program generator seed used by cwfuzz campaigns.
func FuzzSeed(campaign int64, target string, index int) int64 {
	return irgen.DeriveSeed(campaign, target, index)
}

// --- Experiment serving (internal/serve) ---
//
// The serving subsystem behind cmd/cwserve and cmd/cwload: an HTTP JSON
// API over the memoized runner and the persistent store, with singleflight
// request coalescing, a bounded admission queue with 429 backpressure,
// NDJSON sweep streaming, live metrics and graceful drain (DESIGN.md §7).

// Server is the experiment-serving daemon core: an http.Handler over a
// Runner. Mount it on an http.Server and call BeginDrain/Close around the
// listener's shutdown.
type Server = serve.Server

// ServerOptions configures a Server: the Runner (required), the
// computation concurrency bound, the admission queue depth and timeout,
// and the sweep-size cap.
type ServerOptions = serve.Options

// NewServer builds an experiment server from opts.
func NewServer(opts ServerOptions) (*Server, error) { return serve.New(opts) }

// ServeClient is a Go client for a cwserve daemon.
type ServeClient = serve.Client

// NewServeClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080").
func NewServeClient(base string) *ServeClient { return serve.NewClient(base) }

// ServeRunRequest is the /v1/run request document.
type ServeRunRequest = serve.RunRequest

// ServeSweepRequest is the /v1/sweep request document.
type ServeSweepRequest = serve.SweepRequest

// ServeSweepEvent is one NDJSON event of a streaming sweep.
type ServeSweepEvent = serve.SweepEvent

// LoadGenOptions configures a zipf-skewed load-generation run.
type LoadGenOptions = serve.LoadGenOptions

// LoadGenReport summarizes a load-generation run (throughput, latency
// percentiles, status histogram, byte-identity verification).
type LoadGenReport = serve.LoadGenReport

// LoadGen replays a zipf-skewed experiment request mix against a cwserve
// daemon and reports throughput and latency.
func LoadGen(ctx context.Context, c *ServeClient, o LoadGenOptions) (LoadGenReport, error) {
	return serve.LoadGen(ctx, c, o)
}

// --- Fault injection & resilience (internal/fault, DESIGN.md §11) ---
//
// The robustness subsystem behind cmd/cwchaos: a seeded deterministic
// fault-injection plan threaded through the store, the HTTP transport and
// the serving daemon, plus the self-healing client layers (retry with
// capped jittered backoff, sweep resume) that the chaos campaigns verify
// against the byte-identity and no-duplicate-simulation invariants.

// FaultSite names one injection point (e.g. "store.save.torn",
// "transport.reset", "serve.run.panic").
type FaultSite = fault.Site

// Injection sites threaded through the store, transport and daemon.
const (
	FaultStoreSaveFail        = fault.StoreSaveFail
	FaultStoreSaveTorn        = fault.StoreSaveTorn
	FaultStoreLoadErr         = fault.StoreLoadErr
	FaultStoreLoadSlow        = fault.StoreLoadSlow
	FaultTransportReset       = fault.TransportReset
	FaultTransportTimeout     = fault.TransportTimeout
	FaultTransportUnavailable = fault.TransportUnavailable
	FaultTransportTruncate    = fault.TransportTruncate
	FaultServeHandlerPanic    = fault.ServeHandlerPanic
	FaultServeRunPanic        = fault.ServeRunPanic
)

// FaultRule schedules one site: fire probability, warm-up passages, total
// budget and (for slow sites) the injected delay.
type FaultRule = fault.Rule

// FaultPlan is an installed fault schedule with per-site seeded decision
// streams. A nil *FaultPlan is valid and permanently quiet.
type FaultPlan = fault.Plan

// NewFaultPlan builds a deterministic fault plan: each site draws from its
// own RNG seeded by (seed, site), so schedules replay exactly.
func NewFaultPlan(seed int64, rules map[FaultSite]FaultRule) *FaultPlan {
	return fault.New(seed, rules)
}

// FaultStore wraps a result store with scheduled save/load failures, torn
// writes and slow loads.
type FaultStore = fault.Store

// FaultTransport wraps an http.RoundTripper with scheduled connection
// resets, timeouts, synthesized 503s and response-body truncation.
type FaultTransport = fault.Transport

// RetryPolicy drives the serve client's self-healing layer: capped
// exponential backoff with deterministic jitter, honoring Retry-After.
type RetryPolicy = serve.RetryPolicy

// Retryable reports whether an error from the serve client is worth
// retrying on an idempotent request.
func Retryable(err error) bool { return serve.Retryable(err) }

// --- Configuration search (internal/tune, DESIGN.md §12) ---
//
// The search subsystem behind cmd/cwtune: pluggable strategies over the
// (target × workload × pipeline × size) space, discovered from a daemon's
// /v1/registry, measured through the self-healing client, compared under
// equal budgets against an exhaustive ground truth, and validated on a
// seeded held-out split the search never sees.

// TuneStrategy is one pluggable configuration searcher.
type TuneStrategy = tune.Strategy

// TuneStrategyByName resolves a registered strategy ("exhaustive",
// "random", "halving", "flash"); unknown names fail listing the valid
// ones.
func TuneStrategyByName(name string) (TuneStrategy, error) { return tune.StrategyByName(name) }

// TuneStrategyNames lists the registered search strategies, sorted.
func TuneStrategyNames() []string { return tune.StrategyNames() }

// TuneSession is the budget ledger between a strategy and its evaluator:
// memoized measurements, distinct-cell budget accounting and incumbent
// tracking.
type TuneSession = tune.Session

// NewTuneSession builds a session over space with a distinct-cell budget
// (<= 0 means the whole space) and a seed for the strategy's randomness.
func NewTuneSession(space []Experiment, eval TuneEvaluator, budget int, seed int64) *TuneSession {
	return tune.NewSession(space, eval, budget, seed)
}

// TuneEvaluator is how strategies measure cells (HTTP client or
// in-process runner).
type TuneEvaluator = tune.Evaluator

// TuneClientEvaluator measures through a cwserve daemon via the retry
// layer; its Screen issues fidelity=screen sweeps against the daemon's
// analytic tier.
type TuneClientEvaluator = tune.ClientEvaluator

// TuneRunnerEvaluator measures directly against an in-process Runner.
type TuneRunnerEvaluator = tune.RunnerEvaluator

// TuneSpace is a discovered search space: searchable cells plus the
// held-out validation cells excluded from every search.
type TuneSpace = tune.Space

// TuneFilters restricts a discovered search space by names and size.
type TuneFilters = tune.Filters

// TuneSpaceFromRegistry expands a daemon's registry response into a
// search space with a seeded held-out split.
func TuneSpaceFromRegistry(info ServeRegistryInfo, f TuneFilters, seed int64) (TuneSpace, error) {
	return tune.SpaceFromRegistry(info, f, seed)
}

// TuneConfig configures one search campaign.
type TuneConfig = tune.Config

// TuneOutcome is one strategy's campaign result (sims, sims-to-best,
// winner, held-out validation).
type TuneOutcome = tune.Outcome

// TuneReport is a finished campaign; String renders the deterministic
// report, WallSummary the stderr-only timings.
type TuneReport = tune.Report

// RunTuneCampaign runs the configured strategies under equal budgets
// against an exhaustive ground truth and validates the winners on the
// held-out cells.
func RunTuneCampaign(ctx context.Context, cfg TuneConfig) (*TuneReport, error) {
	return tune.Run(ctx, cfg)
}

// ServeRegistryInfo is the /v1/registry response: registered names,
// server caps, analytic-tier availability and per-(workload, target)
// feasible size grids.
type ServeRegistryInfo = serve.RegistryInfo

// DefaultSizeGrid is the probe grid registry size discovery answers from.
var DefaultSizeGrid = core.DefaultSizeGrid

// SupportedSizes filters candidate sweep sizes down to those workload w
// can actually build for target t.
func SupportedSizes(t Target, w Workload, candidates []int) []int {
	return core.SupportedSizes(t, w, candidates)
}
