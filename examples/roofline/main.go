// Roofline analysis (paper §4): evaluate the configuration roofline for
// your own accelerator parameters — where is the knee, when does a workload
// hit the configuration wall, and what would concurrent configuration or a
// wider configuration port buy you?
//
//	go run ./examples/roofline
package main

import (
	"fmt"

	"configwall/internal/roofline"
)

func main() {
	// A hypothetical accelerator: 256 ops/cycle, configured over a 32-bit
	// port at one write per 2 cycles = 2 B/cycle.
	m := roofline.Model{
		Name:     "hypothetical",
		PeakOps:  256,
		BWConfig: 2,
	}
	fmt.Println(m.String())
	fmt.Println()

	// The paper's running example (§2.1): a kernel that launches after
	// every few configuration bytes sits deep in the config-bound region.
	fmt.Printf("%-14s %16s %16s %14s\n", "I_OC (ops/B)", "sequential", "concurrent", "bound?")
	for _, ioc := range []float64{4, 16, 64, m.Knee(), 512, 2048} {
		seq := roofline.Sequential(m.PeakOps, m.BWConfig, ioc)
		conc := roofline.Concurrent(m.PeakOps, m.BWConfig, ioc)
		fmt.Printf("%-14.1f %10.1f ops/cy %10.1f ops/cy %14s\n",
			ioc, seq, conc, roofline.Classify(m.PeakOps, m.BWConfig, ioc))
	}

	fmt.Println()
	fmt.Println("At the knee point the gap between sequential and concurrent")
	fmt.Println("configuration peaks (paper §4.3): exactly half the time is spent")
	fmt.Printf("configuring. Here: %.0f vs %.0f ops/cycle (2x).\n",
		roofline.Sequential(m.PeakOps, m.BWConfig, m.Knee()),
		roofline.Concurrent(m.PeakOps, m.BWConfig, m.Knee()))

	// What-if analysis: double the configuration bandwidth vs double the
	// peak performance for a config-bound workload.
	ioc := 32.0
	fmt.Println()
	fmt.Printf("config-bound workload at I_OC = %.0f ops/B:\n", ioc)
	fmt.Printf("  today:            %6.1f ops/cycle\n", roofline.Sequential(m.PeakOps, m.BWConfig, ioc))
	fmt.Printf("  2x peak compute:  %6.1f ops/cycle (the wall: barely moves)\n",
		roofline.Sequential(2*m.PeakOps, m.BWConfig, ioc))
	fmt.Printf("  2x config BW:     %6.1f ops/cycle\n", roofline.Sequential(m.PeakOps, 2*m.BWConfig, ioc))
	fmt.Printf("  go concurrent:    %6.1f ops/cycle\n", roofline.Concurrent(m.PeakOps, m.BWConfig, ioc))

	// Render the Figure 4 style plot.
	fmt.Println()
	plot := roofline.NewAsciiPlot(70, 16)
	plot.XMin, plot.XMax = 1, 16384
	plot.YMin, plot.YMax = 1, 512
	plot.AddCurve(m.CurveSequential(1, 16384, 70))
	plot.AddCurve(m.CurveConcurrent(1, 16384, 70))
	fmt.Print(plot.Render())
}
