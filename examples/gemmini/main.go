// Gemmini case study (paper §6.1): compile weight-stationary tiled matrix
// multiplications for the sequentially-configured Gemmini-style platform,
// with and without the accfg optimizations, and compare attainable
// performance using the paper's Eq. 3 methodology.
//
//	go run ./examples/gemmini
package main

import (
	"fmt"

	"configwall"
)

func main() {
	target := configwall.GemminiTarget()
	fmt.Println("Gemmini-style platform: 16x16 systolic array, 512 ops/cycle peak,")
	fmt.Println("sequential configuration via RoCC custom instructions (host stalls).")
	fmt.Println()
	fmt.Printf("%-6s | %-28s | %-28s | %s\n", "size", "volatile-asm baseline", "accfg (ours)", "uplift")
	fmt.Printf("%-6s | %14s %13s | %14s %13s |\n", "", "Eq.3 ops/cycle", "config bytes", "Eq.3 ops/cycle", "config bytes")

	var speedups []float64
	for _, n := range []int{32, 64, 128, 256} {
		base, err := configwall.RunTiledMatmul(target, configwall.Baseline, n, configwall.RunOptions{})
		if err != nil {
			panic(err)
		}
		opt, err := configwall.RunTiledMatmul(target, configwall.AllOptimizations, n, configwall.RunOptions{})
		if err != nil {
			panic(err)
		}
		up := opt.AttainableEq3() / base.AttainableEq3()
		speedups = append(speedups, up)
		fmt.Printf("%-6d | %14.0f %13d | %14.0f %13d | %+.0f%%\n",
			n, base.AttainableEq3(), base.ConfigBytes, opt.AttainableEq3(), opt.ConfigBytes,
			100*(up-1))
	}
	fmt.Printf("\ngeomean uplift: %+.0f%% (every run verified against the golden CPU matmul)\n",
		100*(configwall.Geomean(speedups)-1))
	fmt.Println("\nDeduplication removes redundant RoCC writes across tiles; because the")
	fmt.Println("accelerator configures sequentially, overlap cannot apply (paper §2.2),")
	fmt.Println("so the remaining gain comes from folding and hoisting the bit-packing.")
}
