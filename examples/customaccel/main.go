// Custom accelerator (paper Figure 8's "Your Acc" slot): the accfg
// abstraction and all its optimization passes are target-agnostic — only
// the final lowering and a device model are accelerator-specific. This
// example brings up a brand-new CSR-configured vector-scale accelerator
// ("scaler") and plugs it into the experiment engine through the registry,
// without touching any engine code:
//
//  1. define the device model (functional behavior + timing),
//
//  2. write the ~30-line target lowering,
//
//  3. register the target and a "rowscale" workload (IR builder + buffer
//     plan + golden verification),
//
//  4. sweep all four pipeline variants on the shared concurrent runner —
//     the same compile/simulate/verify path the paper's figures use.
//
//     go run ./examples/customaccel
package main

import (
	"context"
	"fmt"
	"os"

	"configwall/internal/accel"
	"configwall/internal/core"
	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/csrops"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
	"configwall/internal/lower"
	"configwall/internal/mem"
	"configwall/internal/riscv"
)

// CSR map of the custom device.
const (
	csrSrc uint32 = 0x7c0 + iota
	csrDst
	csrLen
	csrScale
	csrLaunch
	csrBusy
)

var fieldCSRs = map[string]uint32{
	"src": csrSrc, "dst": csrDst, "len": csrLen, "scale": csrScale,
}

// rowCols is the row width of the rowscale workload; scaleBy is the factor.
const (
	rowCols = 64
	scaleBy = 3
)

// scaler multiplies a vector of int32 by a scalar: dst[i] = src[i] * scale.
// It configures concurrently (staged CSRs) at 8 elements/cycle.
type scaler struct {
	staging map[uint32]uint32
}

func (s *scaler) Name() string              { return "scaler" }
func (s *scaler) Scheme() accel.Scheme      { return accel.Concurrent }
func (s *scaler) ConfigBytes(uint32) uint64 { return 4 }
func (s *scaler) IsLaunch(id uint32) bool   { return id == csrLaunch }
func (s *scaler) IsFence(uint32) bool       { return false }
func (s *scaler) StatusID() (uint32, bool)  { return csrBusy, true }
func (s *scaler) WriteConfig(id uint32, lo, _ uint64) {
	s.staging[id] = uint32(lo)
}

func (s *scaler) Launch(m *mem.Memory) (accel.Launch, error) {
	src := uint64(s.staging[csrSrc])
	dst := uint64(s.staging[csrDst])
	n := uint64(s.staging[csrLen])
	scale := int32(s.staging[csrScale])
	if n == 0 {
		return accel.Launch{}, accel.ErrBadConfig("scaler", "zero length")
	}
	for i := uint64(0); i < n; i++ {
		v := int32(m.Read32(src + 4*i))
		m.Write32(dst+4*i, uint32(v*scale))
	}
	return accel.Launch{Ops: n, Cycles: n/8 + 4}, nil
}

// lowerScaler is the only accelerator-specific compiler code needed:
// setup fields become CSR writes, launch hits the launch CSR, await polls
// the busy CSR (compare paper Figure 8, step 5).
func lowerScaler() ir.Pass {
	return ir.PassFunc{
		PassName: "lower-accfg-to-scaler",
		Fn: func(m *ir.Module) error {
			var err error
			m.Walk(func(op *ir.Op) {
				if err != nil {
					return
				}
				switch op.Name() {
				case accfg.OpSetup:
					s, _ := accfg.AsSetup(op)
					if s.Accelerator() != "scaler" {
						return
					}
					b := ir.Before(op)
					for _, f := range s.Fields() {
						addr, ok := fieldCSRs[f.Name]
						if !ok {
							err = fmt.Errorf("unknown scaler field %q", f.Name)
							return
						}
						csrops.NewWrite(b, addr, f.Value)
					}
				case accfg.OpLaunch:
					l, _ := accfg.AsLaunch(op)
					if l.Accelerator() != "scaler" {
						return
					}
					b := ir.Before(op)
					csrops.NewWrite(b, csrLaunch, arith.NewConstant(b, 1, ir.I64))
				case accfg.OpAwait:
					a, _ := accfg.AsAwait(op)
					if a.Token().Type().(ir.TokenType).Accelerator != "scaler" {
						return
					}
					csrops.NewBarrier(ir.Before(op), csrBusy)
				}
			})
			if err != nil {
				return err
			}
			return lower.StripAccfgTypes(m, "scaler")
		},
	}
}

// scalerTarget assembles the platform the same way core.GemminiTarget and
// core.OpenGeMMTarget do — nothing here is special-cased by the engine.
func scalerTarget() core.Target {
	return core.Target{
		Name:       "scaler",
		Concurrent: true,
		PeakOps:    8, // 8 elements/cycle, one multiply each
		NewDevice:  func() accel.Device { return &scaler{staging: map[uint32]uint32{}} },
		Cost:       riscv.SnitchCost(),
		Lowering:   lowerScaler,
		RawConfigBW: func(c riscv.CostModel) float64 {
			perInstr := float64(c.Cycles(riscv.Instr{Op: riscv.CSRRW}))
			return 4.0 / (2 * perInstr)
		},
		OutputBytes: 4,
	}
}

// buildRowScale builds the workload IR: scale each of the n rows of a
// matrix by scaleBy, one launch per row.
func buildRowScale(rows int) (*ir.Module, error) {
	m := ir.NewModule()
	bufT := ir.MemRef(ir.I32, rows, rowCols)
	f := fnc.NewFunc("main", ir.FuncType([]ir.Type{bufT, bufT}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	src := memref.NewExtractPointer(b, f.Body().Arg(0))
	dst := memref.NewExtractPointer(b, f.Body().Arg(1))

	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, int64(rows), ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)
	loop := scf.NewFor(b, lb, ub, step)
	lbld := ir.AtEnd(loop.Body())
	row := arith.NewIndexCast(lbld, loop.InductionVar(), ir.I64)
	rowBytes := arith.NewMul(lbld, row, arith.NewConstant(lbld, rowCols*4, ir.I64))
	setup := accfg.NewSetup(lbld, "scaler", nil, []accfg.Field{
		{Name: "src", Value: arith.NewAdd(lbld, src, rowBytes)},
		{Name: "dst", Value: arith.NewAdd(lbld, dst, rowBytes)},
		{Name: "len", Value: arith.NewConstant(lbld, rowCols, ir.I64)},
		{Name: "scale", Value: arith.NewConstant(lbld, scaleBy, ir.I64)},
	})
	launch := accfg.NewLaunch(lbld, setup.State())
	accfg.NewAwait(lbld, launch.Token())
	scf.NewYield(lbld)
	fnc.NewReturn(b)

	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("rowscale IR invalid: %w", err)
	}
	return m, nil
}

// rowScaleWorkload packages the IR builder, input initialization and golden
// verification as a registered workload: the engine handles buffer
// placement, codegen, simulation and the verify sweep.
func rowScaleWorkload() core.Workload {
	return core.Workload{
		Name:        "rowscale",
		Description: fmt.Sprintf("scale each row of an n x %d int32 matrix by %d, one launch per row", rowCols, scaleBy),
		Build: func(t core.Target, n int) (core.Instance, error) {
			if t.Name != "scaler" {
				return core.Instance{}, fmt.Errorf("workload rowscale: no builder for target %q", t.Name)
			}
			m, err := buildRowScale(n)
			if err != nil {
				return core.Instance{}, err
			}
			elems := n * rowCols
			return core.Instance{
				Module: m,
				Buffers: []core.Buffer{
					{
						Bytes: uint64(4 * elems),
						Init: func(mm *mem.Memory, base uint64) {
							for i := 0; i < elems; i++ {
								mm.Write32(base+uint64(4*i), uint32(i))
							}
						},
					},
					{
						Bytes: uint64(4 * elems),
						Verify: func(mm *mem.Memory, base uint64) error {
							for i := 0; i < elems; i++ {
								if got := int32(mm.Read32(base + uint64(4*i))); got != int32(i)*scaleBy {
									return fmt.Errorf("dst[%d] = %d, want %d", i, got, int32(i)*scaleBy)
								}
							}
							return nil
						},
					},
				},
			}, nil
		},
	}
}

func main() {
	// Plug the new platform and kernel into the experiment registry; from
	// here on they are addressable by name like the built-ins.
	if err := core.RegisterTarget(scalerTarget()); err != nil {
		fatal("%v", err)
	}
	if err := core.RegisterWorkload(rowScaleWorkload()); err != nil {
		fatal("%v", err)
	}

	const rows = 16
	exps := core.Sweep([]string{"scaler"}, []string{"rowscale"}, core.Pipelines, []int{rows})
	results, err := core.NewRunner(0).RunAll(context.Background(), exps, core.RunOptions{})
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("custom 'scaler' accelerator, %d launches of %d-element row scaling\n", rows, rowCols)
	fmt.Printf("(registered as target %q + workload %q; engine code untouched):\n\n", "scaler", "rowscale")
	base := results[0]
	for _, r := range results {
		fmt.Printf("%-10s %6d cycles  (%d config writes, %d config bytes, verified=%v)\n",
			r.Pipeline, r.Cycles, r.ConfigInstrs, r.ConfigBytes, r.Verified)
	}
	all := results[len(results)-1]
	fmt.Printf("\nspeedup base -> all: %.2fx — every shared pass reused; only the\n",
		float64(base.Cycles)/float64(all.Cycles))
	fmt.Println("lowering (~30 lines), the device model and the workload plan were new.")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "customaccel: "+format+"\n", args...)
	os.Exit(1)
}
