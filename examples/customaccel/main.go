// Custom accelerator (paper Figure 8's "Your Acc" slot): the accfg
// abstraction and all its optimization passes are target-agnostic — only
// the final lowering and a device model are accelerator-specific. This
// example brings up a brand-new CSR-configured vector-scale accelerator
// ("scaler"), reusing the whole shared pipeline:
//
//  1. define the device model (functional behavior + timing),
//
//  2. build accfg IR against its field names,
//
//  3. run the shared dedup/overlap passes,
//
//  4. write the ~30-line target lowering,
//
//  5. co-simulate and verify.
//
//     go run ./examples/customaccel
package main

import (
	"fmt"

	"configwall/internal/accel"
	"configwall/internal/codegen"
	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/csrops"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/memref"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
	"configwall/internal/lower"
	"configwall/internal/mem"
	"configwall/internal/passes"
	"configwall/internal/riscv"
	"configwall/internal/sim"
)

// CSR map of the custom device.
const (
	csrSrc uint32 = 0x7c0 + iota
	csrDst
	csrLen
	csrScale
	csrLaunch
	csrBusy
)

var fieldCSRs = map[string]uint32{
	"src": csrSrc, "dst": csrDst, "len": csrLen, "scale": csrScale,
}

// scaler multiplies a vector of int32 by a scalar: dst[i] = src[i] * scale.
// It configures concurrently (staged CSRs) at 8 elements/cycle.
type scaler struct {
	staging map[uint32]uint32
}

func (s *scaler) Name() string              { return "scaler" }
func (s *scaler) Scheme() accel.Scheme      { return accel.Concurrent }
func (s *scaler) ConfigBytes(uint32) uint64 { return 4 }
func (s *scaler) IsLaunch(id uint32) bool   { return id == csrLaunch }
func (s *scaler) IsFence(uint32) bool       { return false }
func (s *scaler) StatusID() (uint32, bool)  { return csrBusy, true }
func (s *scaler) WriteConfig(id uint32, lo, _ uint64) {
	s.staging[id] = uint32(lo)
}

func (s *scaler) Launch(m *mem.Memory) (accel.Launch, error) {
	src := uint64(s.staging[csrSrc])
	dst := uint64(s.staging[csrDst])
	n := uint64(s.staging[csrLen])
	scale := int32(s.staging[csrScale])
	if n == 0 {
		return accel.Launch{}, accel.ErrBadConfig("scaler", "zero length")
	}
	for i := uint64(0); i < n; i++ {
		v := int32(m.Read32(src + 4*i))
		m.Write32(dst+4*i, uint32(v*scale))
	}
	return accel.Launch{Ops: n, Cycles: n/8 + 4}, nil
}

// lowerScaler is the only accelerator-specific compiler code needed:
// setup fields become CSR writes, launch hits the launch CSR, await polls
// the busy CSR (compare paper Figure 8, step 5).
func lowerScaler() ir.Pass {
	return ir.PassFunc{
		PassName: "lower-accfg-to-scaler",
		Fn: func(m *ir.Module) error {
			var err error
			m.Walk(func(op *ir.Op) {
				if err != nil {
					return
				}
				switch op.Name() {
				case accfg.OpSetup:
					s, _ := accfg.AsSetup(op)
					if s.Accelerator() != "scaler" {
						return
					}
					b := ir.Before(op)
					for _, f := range s.Fields() {
						addr, ok := fieldCSRs[f.Name]
						if !ok {
							err = fmt.Errorf("unknown scaler field %q", f.Name)
							return
						}
						csrops.NewWrite(b, addr, f.Value)
					}
				case accfg.OpLaunch:
					l, _ := accfg.AsLaunch(op)
					if l.Accelerator() != "scaler" {
						return
					}
					b := ir.Before(op)
					csrops.NewWrite(b, csrLaunch, arith.NewConstant(b, 1, ir.I64))
				case accfg.OpAwait:
					a, _ := accfg.AsAwait(op)
					if a.Token().Type().(ir.TokenType).Accelerator != "scaler" {
						return
					}
					csrops.NewBarrier(ir.Before(op), csrBusy)
				}
			})
			if err != nil {
				return err
			}
			return lower.StripAccfgTypes(m, "scaler")
		},
	}
}

func main() {
	const rows, cols = 16, 64

	// A program that scales each row of a matrix by 3, one launch per row.
	m := ir.NewModule()
	bufT := ir.MemRef(ir.I32, rows, cols)
	f := fnc.NewFunc("main", ir.FuncType([]ir.Type{bufT, bufT}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())
	src := memref.NewExtractPointer(b, f.Body().Arg(0))
	dst := memref.NewExtractPointer(b, f.Body().Arg(1))

	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, rows, ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)
	loop := scf.NewFor(b, lb, ub, step)
	lbld := ir.AtEnd(loop.Body())
	row := arith.NewIndexCast(lbld, loop.InductionVar(), ir.I64)
	rowBytes := arith.NewMul(lbld, row, arith.NewConstant(lbld, cols*4, ir.I64))
	setup := accfg.NewSetup(lbld, "scaler", nil, []accfg.Field{
		{Name: "src", Value: arith.NewAdd(lbld, src, rowBytes)},
		{Name: "dst", Value: arith.NewAdd(lbld, dst, rowBytes)},
		{Name: "len", Value: arith.NewConstant(lbld, cols, ir.I64)},
		{Name: "scale", Value: arith.NewConstant(lbld, 3, ir.I64)},
	})
	launch := accfg.NewLaunch(lbld, setup.State())
	accfg.NewAwait(lbld, launch.Token())
	scf.NewYield(lbld)
	fnc.NewReturn(b)

	run := func(label string, pm *ir.PassManager) uint64 {
		mc := m.Clone()
		if err := pm.Run(mc); err != nil {
			panic(err)
		}
		prog, _, err := codegen.Compile(mc, "main", codegen.Options{StaticBase: 8 << 20})
		if err != nil {
			panic(err)
		}
		memory := mem.New(16 << 20)
		srcBase, dstBase := uint64(1<<20), uint64(2<<20)
		for i := 0; i < rows*cols; i++ {
			memory.Write32(srcBase+uint64(4*i), uint32(i))
		}
		machine := sim.NewMachine(memory, riscv.SnitchCost(), &scaler{staging: map[uint32]uint32{}})
		machine.Regs[riscv.A0] = int64(srcBase)
		machine.Regs[riscv.A0+1] = int64(dstBase)
		machine.Regs[riscv.SP] = 12 << 20
		if err := machine.Run(prog); err != nil {
			panic(err)
		}
		for i := 0; i < rows*cols; i++ {
			if got := int32(memory.Read32(dstBase + uint64(4*i))); got != int32(i)*3 {
				panic(fmt.Sprintf("%s: dst[%d] = %d, want %d", label, i, got, int32(i)*3))
			}
		}
		fmt.Printf("%-22s %6d cycles  (%d config writes, verified)\n",
			label, machine.Cycles, machine.ConfigInstrs)
		return machine.Cycles
	}

	fmt.Println("custom 'scaler' accelerator, 16 launches of 64-element row scaling:")
	base := run("baseline", ir.NewPassManager(lowerScaler()))
	opt := run("dedup+overlap", ir.NewPassManager(
		passes.Canonicalize(), passes.CSE(), passes.LICM(),
		passes.TraceStates(),
		passes.HoistLoopInvariantFields(),
		passes.Dedup(),
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
		passes.Overlap(func(a string) bool { return a == "scaler" }),
		passes.Canonicalize(),
		lowerScaler(),
		passes.Canonicalize(), passes.CSE(),
	))
	fmt.Printf("\nspeedup: %.2fx — all shared passes reused; only the lowering (~30\n", float64(base)/float64(opt))
	fmt.Println("lines) and the device model were written for this accelerator.")
}
