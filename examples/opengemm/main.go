// OpenGeMM case study (paper §6.2): measure the tiled matmul on the
// concurrently-configured OpenGeMM-style platform under all four pipeline
// variants (base / dedup / overlap / all) and show the timelines that
// explain the speedup (paper Figures 7 and 12).
//
//	go run ./examples/opengemm
package main

import (
	"fmt"

	"configwall"
	"configwall/internal/trace"
)

func main() {
	target := configwall.OpenGeMMTarget()
	n := 64
	fmt.Println("OpenGeMM-style platform: 1024 ops/cycle peak, concurrent configuration")
	fmt.Printf("(staged CSR writes). Tiled %dx%d matmul, 8-by-K-by-8 tiles.\n\n", n, n)

	fmt.Printf("%-9s %12s %14s %10s %12s\n", "pipeline", "cycles", "ops/cycle", "% of peak", "config B")
	var results []configwall.Result
	for _, p := range configwall.Pipelines {
		r, err := configwall.RunTiledMatmul(target, p, n, configwall.RunOptions{RecordTrace: true})
		if err != nil {
			panic(err)
		}
		results = append(results, r)
		fmt.Printf("%-9s %12d %14.1f %9.1f%% %12d\n",
			p, r.Cycles, r.OpsPerCycle(), 100*r.Utilization(), r.ConfigBytes)
	}
	base, full := results[0], results[len(results)-1]
	fmt.Printf("\nspeedup base -> all optimizations: %.2fx\n\n", full.OpsPerCycle()/base.OpsPerCycle())

	fmt.Println("baseline timeline (configuration serializes with compute):")
	fmt.Print(trace.Timeline(base.Trace, 0, base.Cycles/4, 100))
	fmt.Println("\noptimized timeline (configuration hidden under accelerator busy):")
	fmt.Print(trace.Timeline(full.Trace, 0, full.Cycles/4, 100))
	fmt.Printf("\noverlapped host cycles: baseline %d vs optimized %d\n",
		trace.OverlapCycles(base.Trace), trace.OverlapCycles(full.Trace))
}
