// Quickstart: build a small accelerator program in the accfg IR, run the
// paper's optimization pipeline on it, and look at what changed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"configwall/internal/dialects/accfg"
	"configwall/internal/dialects/arith"
	"configwall/internal/dialects/fnc"
	"configwall/internal/dialects/scf"
	"configwall/internal/ir"
	"configwall/internal/passes"
)

func main() {
	// Build the paper's Figure 9 input: a loop that reconfigures the
	// accelerator every iteration even though only one field changes.
	m := ir.NewModule()
	f := fnc.NewFunc("kernel", ir.FuncType([]ir.Type{ir.I64}, nil))
	m.Append(f.Op)
	b := ir.AtEnd(f.Body())

	ptrA := f.Body().Arg(0)
	ptrA.SetName("ptrA")
	lb := arith.NewConstant(b, 0, ir.Index)
	ub := arith.NewConstant(b, 10, ir.Index)
	step := arith.NewConstant(b, 1, ir.Index)
	loop := scf.NewFor(b, lb, ub, step)

	lbld := ir.AtEnd(loop.Body())
	i := arith.NewIndexCast(lbld, loop.InductionVar(), ir.I64)
	setup := accfg.NewSetup(lbld, "gemm", nil, []accfg.Field{
		{Name: "A", Value: ptrA}, // loop-invariant: will be hoisted
		{Name: "i", Value: i},    // changes every iteration: stays
	})
	launch := accfg.NewLaunch(lbld, setup.State())
	accfg.NewAwait(lbld, launch.Token())
	scf.NewYield(lbld)
	fnc.NewReturn(b)

	fmt.Println("=== before optimization ===")
	fmt.Print(ir.PrintModule(m))

	pm := ir.NewPassManager(
		passes.TraceStates(),              // §5.3: connect setups into state chains
		passes.HoistLoopInvariantFields(), // §5.4.1: move invariant fields out
		passes.Dedup(),                    // §5.4: drop redundant writes
		passes.MergeSetups(),
		passes.RemoveEmptySetups(),
		passes.Overlap(func(string) bool { return true }), // §5.5: software-pipeline
		passes.Canonicalize(),
	)
	if err := pm.Run(m); err != nil {
		panic(err)
	}

	fmt.Println("\n=== after optimization ===")
	fmt.Print(ir.PrintModule(m))

	fmt.Println("\npass log:")
	for _, line := range pm.Stats {
		fmt.Println("  " + line)
	}
	fmt.Println("\nThe loop now launches from the loop-carried state and prepares the")
	fmt.Println("next iteration's configuration while the accelerator runs (Figure 9).")
}
