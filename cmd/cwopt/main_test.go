package main

import (
	"strings"
	"testing"

	"configwall/internal/analysis"
	"configwall/internal/dialects/arith"
	"configwall/internal/ir"
)

// TestBuildPipelineUnknownPassListsValidNames: cwopt must reject unknown
// pass names with an error that enumerates every valid pass (the driver
// then exits non-zero), mirroring cwbench's unknown -only handling.
func TestBuildPipelineUnknownPassListsValidNames(t *testing.T) {
	_, err := buildPipeline("cse,definitely-not-a-pass", true)
	if err == nil {
		t.Fatal("unknown pass accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"definitely-not-a-pass"`) {
		t.Errorf("error does not name the offending pass: %s", msg)
	}
	for _, name := range availableNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list valid pass %q: %s", name, msg)
		}
	}
}

// TestBuildPipelineKnownPasses: a valid spec builds the pipeline in order,
// tolerating whitespace.
func TestBuildPipelineKnownPasses(t *testing.T) {
	pm, err := buildPipeline(" canonicalize , cse,accfg-dedup", false)
	if err != nil {
		t.Fatal(err)
	}
	got := pm.Passes()
	want := []string{"canonicalize", "cse", "accfg-dedup"}
	if len(got) != len(want) {
		t.Fatalf("pipeline %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pipeline %v, want %v", got, want)
		}
	}
	if pm.VerifyEach {
		t.Error("VerifyEach not propagated")
	}
}

// TestBuildPipelineEmptySpec: no -p flag means an empty pipeline (print the
// parsed module unchanged).
func TestBuildPipelineEmptySpec(t *testing.T) {
	pm, err := buildPipeline("", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Passes()) != 0 {
		t.Fatalf("expected empty pipeline, got %v", pm.Passes())
	}
}

// TestCheckEachAbortsMiscompile: with -check (the default) the driver wires
// the static config-state checker into the pass manager; a pass that
// provably changes a launch's configuration must abort the run.
func TestCheckEachAbortsMiscompile(t *testing.T) {
	src := `
"builtin.module"() ({
  "fnc.func"() ({
    %0 = "arith.constant"() {value = 5 : i64} : () -> (i64)
    %1 = "accfg.setup"(%0) {accelerator = "acc", fields = ["x"]} : (i64) -> (!accfg.state<"acc">)
    %2 = "accfg.launch"(%1) : (!accfg.state<"acc">) -> (!accfg.token<"acc">)
    "accfg.await"(%2) : (!accfg.token<"acc">) -> ()
    "fnc.return"() : () -> ()
  }) {function_type = () -> (), sym_name = "main"} : () -> ()
}) : () -> ()
`
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	miscompile := ir.PassFunc{
		PassName: "test-miscompile",
		Fn: func(m *ir.Module) error {
			m.Walk(func(op *ir.Op) {
				if op.Name() == arith.OpConstant {
					op.SetAttr("value", ir.IntAttr(6))
				}
			})
			return nil
		},
	}
	pm := ir.NewPassManager(miscompile)
	pm.CheckEach = analysis.PassCheck
	err = pm.Run(m)
	if err == nil {
		t.Fatal("miscompiling pass not aborted by the static checker")
	}
	if !strings.Contains(err.Error(), "test-miscompile") || !strings.Contains(err.Error(), "field x") {
		t.Errorf("error does not identify pass and field: %v", err)
	}
}

// TestAvailableNamesSortedAndComplete: the listing is sorted and includes
// the per-target lowerings registered at init.
func TestAvailableNamesSorted(t *testing.T) {
	names := availableNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted/unique at %d: %v", i, names)
		}
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"cse", "accfg-dedup", "accfg-overlap", "lower-accfg-to-gemmini", "lower-accfg-to-opengemm"} {
		if !found[want] {
			t.Errorf("expected pass %q in listing: %v", want, names)
		}
	}
}
