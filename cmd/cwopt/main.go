// Command cwopt is an mlir-opt-style pass driver over the textual IR: it
// reads a module, runs a comma-separated pass pipeline, and prints the
// result.
//
//	cwopt -p accfg-trace-states,accfg-dedup input.ir
//	cwopt -analyze input.ir    # print per-launch abstract configs + bounds
//	cwopt -list                # list available passes
//	cwopt -help-ops            # list registered operations
//	echo '...' | cwopt -p cse  # reads stdin when no file is given
//
// Every pipeline runs under the static config-state checker (-check,
// on by default): after each pass the result is compared against the
// pass's input, and a provable launch-configuration divergence aborts the
// run. Use -check=false to reproduce a miscompile for debugging.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	_ "configwall/internal/dialects/accfg"
	_ "configwall/internal/dialects/arith"
	_ "configwall/internal/dialects/csrops"
	_ "configwall/internal/dialects/fnc"
	_ "configwall/internal/dialects/memref"
	_ "configwall/internal/dialects/rocc"
	_ "configwall/internal/dialects/scf"

	"configwall/internal/analysis"
	"configwall/internal/core"
	"configwall/internal/ir"
	"configwall/internal/passes"
)

// available maps pipeline names to pass constructors. Overlap assumes every
// accelerator is concurrent when invoked from the command line; use the
// experiment engine for per-target capability handling.
var available = map[string]func() ir.Pass{
	"canonicalize":                      passes.Canonicalize,
	"cse":                               passes.CSE,
	"licm":                              passes.LICM,
	"inline":                            passes.Inline,
	"simplify-trivial-loops":            passes.SimplifyTrivialLoops,
	"accfg-trace-states":                passes.TraceStates,
	"accfg-dedup":                       passes.Dedup,
	"accfg-sink-setups-into-branches":   passes.SinkSetupsIntoBranches,
	"accfg-hoist-loop-invariant-fields": passes.HoistLoopInvariantFields,
	"accfg-merge-setups":                passes.MergeSetups,
	"accfg-remove-empty-setups":         passes.RemoveEmptySetups,
	"accfg-overlap":                     func() ir.Pass { return passes.Overlap(func(string) bool { return true }) },
}

// init adds one lower-accfg-to-<target> entry per target registered by the
// packages this driver links in (the built-ins, plus anything an imported
// package registers at init). Out-of-tree targets need an import added
// here to appear, since they register from their own main.
func init() {
	for _, name := range core.TargetNames() {
		t, err := core.LookupTarget(name)
		if err != nil || t.Lowering == nil {
			continue
		}
		available["lower-accfg-to-"+name] = t.Lowering
	}
}

func main() {
	pipeline := flag.String("p", "", "comma-separated pass pipeline")
	list := flag.Bool("list", false, "list available passes")
	helpOps := flag.Bool("help-ops", false, "list registered operations")
	verify := flag.Bool("verify", true, "verify the IR between passes")
	check := flag.Bool("check", true, "statically check each pass preserves launch configurations")
	analyze := flag.Bool("analyze", false, "print the per-launch abstract configuration report and exit (after -p, if given)")
	stats := flag.Bool("stats", false, "print per-pass op-count statistics to stderr")
	flag.Parse()

	if *list {
		for _, n := range availableNames() {
			fmt.Println(n)
		}
		return
	}
	if *helpOps {
		for _, n := range ir.RegisteredOps() {
			info, _ := ir.Lookup(n)
			fmt.Printf("%-28s %s\n", n, info.Summary)
		}
		return
	}

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal("reading input: %v", err)
	}

	m, err := ir.Parse(string(src))
	if err != nil {
		fatal("%v", err)
	}
	if err := ir.Verify(m); err != nil {
		fatal("input does not verify: %v", err)
	}

	pm, err := buildPipeline(*pipeline, *verify)
	if err != nil {
		fatal("%v", err)
	}
	if *check {
		pm.CheckEach = analysis.PassCheck
	}
	if err := pm.Run(m); err != nil {
		fatal("%v", err)
	}
	if *stats {
		for _, line := range pm.Stats {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if *analyze {
		fmt.Print(analysis.ReportString(m))
		return
	}
	fmt.Print(ir.PrintModule(m))
}

// availableNames returns the registered pipeline names, sorted.
func availableNames() []string {
	names := make([]string, 0, len(available))
	for n := range available {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// buildPipeline parses a comma-separated pass spec into a PassManager. An
// unknown pass name is an error listing every valid name (mirroring
// cwbench's unknown -only handling), so the driver exits non-zero instead
// of silently running a partial pipeline.
func buildPipeline(spec string, verifyEach bool) (*ir.PassManager, error) {
	pm := ir.NewPassManager()
	pm.VerifyEach = verifyEach
	if spec == "" {
		return pm, nil
	}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		ctor, ok := available[name]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q (valid passes: %s)", name, strings.Join(availableNames(), ", "))
		}
		pm.Add(ctor())
	}
	return pm, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwopt: "+format+"\n", args...)
	os.Exit(1)
}
