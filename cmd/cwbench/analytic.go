package main

// Analytical-tier modes (DESIGN.md §10): -calibrate fits the
// simulation-free prediction tier against the simulator and emits the
// fitted constants plus the held-out error report; -fidelity switches the
// figure sweeps onto the analytical tier (screen = every cell predicted,
// topk = only the K most promising cells simulated).

import (
	"context"
	"fmt"
	"os"
	"sort"

	"configwall/internal/analytic"
	"configwall/internal/core"
)

// runCalibrate is the calibration subcommand: fit against the simulator,
// print the per-target roofline constants and the held-out error report,
// and write the model JSON. A band violation is an error — the committed
// band is the contract every later -fidelity consumer relies on.
func runCalibrate(r *core.Runner, path string, seed int64) error {
	model, rep, err := analytic.Calibrate(context.Background(), r, analytic.Spec{Seed: seed})
	if err != nil {
		return err
	}
	printConstants(model)
	fmt.Print(rep.String())
	if err := model.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cwbench: calibrate: wrote %s\n", path)
	if !rep.Clean() {
		return fmt.Errorf("held-out error outside the documented band (geomean <= %.0f%%, per-cell <= %.0f%%)",
			100*rep.Band.Geomean, 100*rep.Band.PerCell)
	}
	return nil
}

// printConstants renders the fitted per-target constants deterministically
// (sorted target order, like every other cwbench table).
func printConstants(m *analytic.Model) {
	fmt.Printf("calibration: seed %d, schema %d, band: geomean <= %.0f%%, per-cell <= %.0f%%\n",
		m.Seed, m.Schema, 100*m.Band.Geomean, 100*m.Band.PerCell)
	names := make([]string, 0, len(m.Targets))
	for tn := range m.Targets {
		names = append(names, tn)
	}
	sort.Strings(names)
	for _, tn := range names {
		tm := m.Targets[tn]
		fmt.Printf("%s: peak %.0f ops/cycle, BW_config %.2f B/cycle, BW_memory %.0f B/cycle, concurrent-config=%t\n",
			tn, tm.Constants.PeakOps, tm.Constants.BWConfig, tm.Constants.BWMemory, tm.Constants.Concurrent)
		fmt.Printf("%s: train sizes %v, held-out sizes %v, %d fitted curves\n",
			tn, tm.TrainSizes, tm.HoldoutSizes, len(tm.Curves))
	}
}

// setupFidelity routes the figure sweeps onto the requested prediction
// tier. screen predicts every cell; topk pre-simulates the K cells with
// the best predicted ops/cycle across the selected artifacts' grids and
// renders everything else from predictions (FidelityCached serves the
// simulated cells from the memo and falls back to the model).
func setupFidelity(b *bench, name, modelPath string, seed int64, k int, only string, sharded bool) error {
	switch name {
	case "", "full":
		return nil
	case "screen", "topk":
	default:
		return fmt.Errorf("unknown -fidelity %q (valid: full, screen, topk)", name)
	}
	if sharded {
		return fmt.Errorf("-shard precomputes simulated ground truth; it does not combine with -fidelity %s", name)
	}
	model, err := loadOrCalibrate(b.runner, modelPath, seed)
	if err != nil {
		return err
	}
	b.runner.SetPredictor(model)
	if name == "screen" {
		b.opts.Fidelity = core.FidelityScreen
		return nil
	}
	grid := figureGrid(b, only)
	if len(grid) == 0 {
		return fmt.Errorf("-fidelity topk: no experiment grid to rank (artifact %q has no sweep)", only)
	}
	if _, err := b.runner.RunTopK(context.Background(), grid, b.opts, k); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cwbench: fidelity topk: simulated %d of %d grid cells\n", min(k, len(grid)), len(grid))
	b.opts.Fidelity = core.FidelityCached
	return nil
}

// loadOrCalibrate resolves the predictor for -fidelity: a committed model
// file when given (the fast path — zero simulations before screening), an
// in-process calibration otherwise. An in-process fit that violates its
// own band is rejected: silently screening with an out-of-band model
// would defeat the tier's error contract.
func loadOrCalibrate(r *core.Runner, path string, seed int64) (*analytic.Model, error) {
	if path != "" {
		return analytic.ReadModel(path)
	}
	fmt.Fprintf(os.Stderr, "cwbench: no -model given; calibrating in-process (seed %d)\n", seed)
	model, rep, err := analytic.Calibrate(context.Background(), r, analytic.Spec{Seed: seed})
	if err != nil {
		return nil, err
	}
	if !rep.Clean() {
		return nil, fmt.Errorf("in-process calibration violates its error band:\n%s", rep)
	}
	return model, nil
}
