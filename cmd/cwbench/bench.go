package main

// Micro-benchmark mode: -bench-json runs a fixed suite through
// testing.Benchmark and writes one JSON report; -bench-compare checks a
// fresh run of the same suite against a committed baseline (BENCH_*.json)
// and exits non-zero on regression.
//
// The regression gate deliberately checks only machine-independent
// quantities: allocs/op (deterministic modulo pool warm-up) and engine
// speed *ratios* (compiled-vs-fast on the same host, so the machine
// cancels out). Absolute ns/op is recorded for trajectory plots but never
// gated — CI runners are too heterogeneous for a 20% wall-time bound to
// mean anything.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"configwall/internal/analytic"
	"configwall/internal/core"
	"configwall/internal/mem"
	"configwall/internal/riscv"
	"configwall/internal/sim"
)

type benchEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchReport struct {
	Schema  int                   `json:"schema"`
	Note    string                `json:"note"`
	Go      string                `json:"go"`
	Entries map[string]benchEntry `json:"entries"`
	Derived map[string]float64    `json:"derived"`
}

const benchNote = "ns_per_op is machine-dependent and informational; " +
	"-bench-compare gates on allocs_per_op and the derived speed ratios only"

// suiteALULoop mirrors the internal/sim ALU micro-benchmark: a loop whose
// body is a long straight line of ALU work, the block-execution best case.
func suiteALULoop(iters int64) *riscv.Program {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 28, Imm: iters})
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 5, Imm: 0x12345})
	a.Label("top")
	for i := 0; i < 4; i++ {
		a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 6, Rs1: 5, Imm: 17})
		a.Emit(riscv.Instr{Op: riscv.SLLI, Rd: 7, Rs1: 6, Imm: 3})
		a.Emit(riscv.Instr{Op: riscv.XOR, Rd: 8, Rs1: 7, Rs2: 5})
		a.Emit(riscv.Instr{Op: riscv.MUL, Rd: 9, Rs1: 8, Rs2: 6})
		a.Emit(riscv.Instr{Op: riscv.AND, Rd: 5, Rs1: 9, Rs2: 8})
		a.Emit(riscv.Instr{Op: riscv.SRLI, Rd: 5, Rs1: 5, Imm: 1})
		a.Emit(riscv.Instr{Op: riscv.OR, Rd: 5, Rs1: 5, Rs2: 6})
	}
	a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 28, Rs1: 28, Imm: -1})
	a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 28, Rs2: 0, Label: "top"})
	a.Emit(riscv.Instr{Op: riscv.HALT})
	p, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return p
}

// suiteMemLoop mixes loads and stores into the blocks.
func suiteMemLoop(iters int64) *riscv.Program {
	a := riscv.NewAssembler()
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 28, Imm: iters})
	a.Emit(riscv.Instr{Op: riscv.LI, Rd: 10, Imm: 0x1000})
	a.Label("top")
	for i := int64(0); i < 4; i++ {
		a.Emit(riscv.Instr{Op: riscv.LD, Rd: 5, Rs1: 10, Imm: 8 * i})
		a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 5, Rs1: 5, Imm: 1})
		a.Emit(riscv.Instr{Op: riscv.SD, Rs1: 10, Rs2: 5, Imm: 8 * i})
		a.Emit(riscv.Instr{Op: riscv.LW, Rd: 6, Rs1: 10, Imm: 4 * i})
	}
	a.Emit(riscv.Instr{Op: riscv.ADDI, Rd: 28, Rs1: 28, Imm: -1})
	a.Emit(riscv.Instr{Op: riscv.BNE, Rs1: 28, Rs2: 0, Label: "top"})
	a.Emit(riscv.Instr{Op: riscv.HALT})
	p, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return p
}

const suiteIters = 20_000

// suiteEngine measures steady-state Run throughput of one engine on one
// program: the machine is reused across iterations, so the compiled
// engine's memoized program form is exercised the way sweeps exercise it.
func suiteEngine(engine sim.Engine, p *riscv.Program) func(b *testing.B) {
	return func(b *testing.B) {
		mc := sim.NewMachine(mem.New(1<<16), riscv.RocketCost(), nil)
		mc.Engine = engine
		mc.MaxInstrs = 1 << 40
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := mc.Run(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// suiteCoreRun measures the full pooled experiment path (compile +
// simulate through the execution-context pool) on the compiled engine.
func suiteCoreRun(b *testing.B) {
	t := core.OpenGeMMTarget()
	opts := core.RunOptions{SkipVerify: true, Engine: sim.EngineCompiled}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunTiledMatmul(t, core.AllOptimizations, 32, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// The analytic bench shares one calibration across testing.Benchmark's
// repeated invocations — the fit is simulator-paced and must stay outside
// the timed loop, which measures Predict alone.
var (
	analyticBenchOnce  sync.Once
	analyticBenchModel *analytic.Model
	analyticBenchErr   error
)

// suiteAnalyticPredict measures the analytical tier's per-cell cost: the
// same experiment cell suiteCoreRun simulates, answered without touching
// the simulator. The derived analytic_speedup_vs_sim_matmul_32 ratio is
// the multi-fidelity headroom the screening tier trades on.
func suiteAnalyticPredict(b *testing.B) {
	analyticBenchOnce.Do(func() {
		r := core.NewRunner(0)
		analyticBenchModel, _, analyticBenchErr = analytic.Calibrate(context.Background(), r, analytic.Spec{Seed: 1})
	})
	if analyticBenchErr != nil {
		b.Fatal(analyticBenchErr)
	}
	e := core.Experiment{Target: "opengemm", Workload: core.WorkloadMatmul, Pipeline: core.AllOptimizations, N: 32}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyticBenchModel.Predict(e); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSuite = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"sim_ref_alu", suiteEngine(sim.EngineRef, suiteALULoop(suiteIters))},
	{"sim_fast_alu", suiteEngine(sim.EngineFast, suiteALULoop(suiteIters))},
	{"sim_compiled_alu", suiteEngine(sim.EngineCompiled, suiteALULoop(suiteIters))},
	{"sim_fast_mem", suiteEngine(sim.EngineFast, suiteMemLoop(suiteIters))},
	{"sim_compiled_mem", suiteEngine(sim.EngineCompiled, suiteMemLoop(suiteIters))},
	{"core_compiled_matmul_32", suiteCoreRun},
	{"analytic_predict_matmul_32", suiteAnalyticPredict},
}

func runBenchSuite() benchReport {
	rep := benchReport{
		Schema:  8,
		Note:    benchNote,
		Go:      runtime.Version(),
		Entries: map[string]benchEntry{},
		Derived: map[string]float64{},
	}
	for _, s := range benchSuite {
		fmt.Fprintf(os.Stderr, "cwbench: bench: %s\n", s.name)
		r := testing.Benchmark(s.fn)
		rep.Entries[s.name] = benchEntry{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	ratio := func(name, num, den string) {
		n, d := rep.Entries[num], rep.Entries[den]
		if d.NsPerOp > 0 {
			rep.Derived[name] = n.NsPerOp / d.NsPerOp
		}
	}
	ratio("fast_speedup_vs_ref_alu", "sim_ref_alu", "sim_fast_alu")
	ratio("compiled_speedup_vs_ref_alu", "sim_ref_alu", "sim_compiled_alu")
	ratio("compiled_speedup_vs_fast_alu", "sim_fast_alu", "sim_compiled_alu")
	ratio("compiled_speedup_vs_fast_mem", "sim_fast_mem", "sim_compiled_mem")
	ratio("analytic_speedup_vs_sim_matmul_32", "core_compiled_matmul_32", "analytic_predict_matmul_32")
	return rep
}

// compareBench reports every >20% regression of cur against old. allocs/op
// gets two extra allocs of absolute slack so pool warm-up inside a short
// testing.Benchmark run cannot flake a zero-alloc entry.
func compareBench(old, cur benchReport) []string {
	const tol = 1.20
	var bad []string
	for _, s := range benchSuite {
		o, ok := old.Entries[s.name]
		if !ok {
			continue // new entry, no baseline yet
		}
		c, present := cur.Entries[s.name]
		if !present {
			bad = append(bad, fmt.Sprintf("entry %s missing from the fresh run", s.name))
			continue
		}
		if float64(c.AllocsPerOp) > float64(o.AllocsPerOp)*tol+2 {
			bad = append(bad, fmt.Sprintf("%s: allocs/op regressed %d -> %d (>20%%)",
				s.name, o.AllocsPerOp, c.AllocsPerOp))
		}
	}
	for name, o := range old.Derived {
		c, present := cur.Derived[name]
		if !present || c < o/tol {
			bad = append(bad, fmt.Sprintf("%s: speed ratio regressed %.2f -> %.2f (>20%%)", name, o, c))
		}
	}
	return bad
}

// runBenchMode drives -bench-json / -bench-compare: one suite run feeds
// both the written report and the baseline comparison.
func runBenchMode(jsonPath, comparePath string) {
	rep := runBenchSuite()
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("-bench-json: %v", err)
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal("-bench-json: %v", err)
		}
		fmt.Fprintf(os.Stderr, "cwbench: bench: wrote %s\n", jsonPath)
	}
	if comparePath != "" {
		buf, err := os.ReadFile(comparePath)
		if err != nil {
			fatal("-bench-compare: %v", err)
		}
		var old benchReport
		if err := json.Unmarshal(buf, &old); err != nil {
			fatal("-bench-compare: %s: %v", comparePath, err)
		}
		if bad := compareBench(old, rep); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "cwbench: bench: REGRESSION: %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cwbench: bench: no regressions vs %s\n", comparePath)
	}
	for _, s := range benchSuite {
		e := rep.Entries[s.name]
		fmt.Printf("%-24s %14.0f ns/op %8d B/op %6d allocs/op\n", s.name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	for _, name := range []string{"fast_speedup_vs_ref_alu", "compiled_speedup_vs_ref_alu", "compiled_speedup_vs_fast_alu", "compiled_speedup_vs_fast_mem", "analytic_speedup_vs_sim_matmul_32"} {
		if v, ok := rep.Derived[name]; ok {
			fmt.Printf("%-28s %6.2fx\n", name, v)
		}
	}
}
