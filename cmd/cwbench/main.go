// Command cwbench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index):
//
//	cwbench                  # run everything
//	cwbench -only fig11      # one artifact: table1, fig3, fig4, fig5,
//	                         # example46, fig7, fig10, fig11, fig12
//	cwbench -sizes 16,32,64  # override the size sweep
//	cwbench -workers 8       # experiment worker-pool bound (0 = all cores)
//
// All experiment cells run on one shared concurrent runner, so artifacts
// that revisit a cell (Figure 11 and Figure 12 share their base/all cells)
// never recompile it, and output is byte-identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"configwall/internal/accel/gemmini"
	"configwall/internal/core"
	"configwall/internal/roofline"
)

// artifact is one regenerable table/figure; run renders it to stdout.
type artifact struct {
	name  string
	title string
	run   func(b *bench) error
}

// bench carries the shared state of one cwbench invocation.
type bench struct {
	runner *core.Runner
	sizes  []int // overrides the per-figure defaults when non-empty
}

func (b *bench) pick(def []int) []int {
	if len(b.sizes) > 0 {
		return b.sizes
	}
	return def
}

// artifacts lists every artifact in presentation order; -only matches on
// name, and unknown names report this list.
var artifacts = []artifact{
	{"table1", "Table 1: fields of the gemmini_loop_ws sequence", func(*bench) error {
		fmt.Print(gemmini.Table1())
		return nil
	}},
	{"fig3", "Figure 3: processor roofline", func(*bench) error {
		m := roofline.Model{Name: "generic", PeakOps: 512, BWConfig: 1, BWMemory: 16}
		fmt.Println("P_attainable = min(peak, BW_memory x I_operational)")
		for _, iop := range []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128} {
			fmt.Printf("  I_op = %6.1f ops/B -> %6.1f ops/cycle\n", iop, roofline.Processor(m.PeakOps, m.BWMemory, iop))
		}
		return nil
	}},
	{"fig4", "", func(*bench) error {
		g, err := core.LookupTarget("gemmini")
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure4(g.RooflineModel()))
		return nil
	}},
	{"fig5", "", func(*bench) error {
		o, err := core.LookupTarget("opengemm")
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure5(o.RooflineModel(), 8))
		return nil
	}},
	{"example46", "", func(*bench) error {
		fmt.Print(core.RenderSection46())
		return nil
	}},
	{"fig7", "Figure 2/7: execution timelines before/after optimization", func(*bench) error {
		o, err := core.LookupTarget("opengemm")
		if err != nil {
			return err
		}
		out, err := core.RenderTimelines(o, 32, 100)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}},
	{"fig10", "", func(b *bench) error {
		rows, err := core.Figure10With(b.runner, b.pick(core.Figure10Sizes), core.RunOptions{})
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure10(rows))
		return nil
	}},
	{"fig11", "", func(b *bench) error {
		rows, err := core.Figure11With(b.runner, b.pick(core.Figure11Sizes), core.RunOptions{})
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure11(rows))
		return nil
	}},
	{"fig12", "", func(b *bench) error {
		data, err := core.Figure12With(b.runner, b.pick(core.Figure12Sizes), core.RunOptions{})
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure12(data))
		return nil
	}},
}

func artifactNames() []string {
	names := make([]string, len(artifacts))
	for i, a := range artifacts {
		names[i] = a.name
	}
	return names
}

func main() {
	only := flag.String("only", "", "run a single artifact ("+strings.Join(artifactNames(), "|")+")")
	sizes := flag.String("sizes", "", "comma-separated matrix sizes overriding the per-figure defaults")
	workers := flag.Int("workers", 0, "experiment worker-pool bound (0 = GOMAXPROCS)")
	flag.Parse()

	b := &bench{runner: core.NewRunner(*workers)}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal("bad -sizes value %q: %v", s, err)
			}
			b.sizes = append(b.sizes, n)
		}
	}

	ran := false
	for _, a := range artifacts {
		if *only != "" && *only != a.name {
			continue
		}
		ran = true
		section(a.title)
		if err := a.run(b); err != nil {
			fatal("%s: %v", a.name, err)
		}
	}
	if !ran {
		fatal("unknown artifact %q (valid artifacts: %s)", *only, strings.Join(artifactNames(), ", "))
	}
}

func section(title string) {
	fmt.Println()
	if title != "" {
		fmt.Println(title)
	}
	fmt.Println(strings.Repeat("=", 76))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwbench: "+format+"\n", args...)
	os.Exit(1)
}
