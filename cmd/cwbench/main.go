// Command cwbench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index):
//
//	cwbench                  # run everything
//	cwbench -only fig11      # one artifact: table1, fig3, fig4, fig5,
//	                         # example46, fig7, fig10, fig11, fig12
//	cwbench -sizes 16,32,64  # override the size sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"configwall/internal/accel/gemmini"
	"configwall/internal/core"
	"configwall/internal/roofline"
)

func main() {
	only := flag.String("only", "", "run a single artifact (table1|fig3|fig4|fig5|example46|fig7|fig10|fig11|fig12)")
	sizes := flag.String("sizes", "", "comma-separated matrix sizes overriding the per-figure defaults")
	flag.Parse()

	var override []int
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal("bad -sizes value %q: %v", s, err)
			}
			override = append(override, n)
		}
	}
	pick := func(def []int) []int {
		if len(override) > 0 {
			return override
		}
		return def
	}

	want := func(name string) bool { return *only == "" || *only == name }
	ran := false

	if want("table1") {
		ran = true
		section("Table 1: fields of the gemmini_loop_ws sequence")
		fmt.Print(gemmini.Table1())
	}
	if want("fig3") {
		ran = true
		section("Figure 3: processor roofline")
		m := roofline.Model{Name: "generic", PeakOps: 512, BWConfig: 1, BWMemory: 16}
		fmt.Println("P_attainable = min(peak, BW_memory x I_operational)")
		for _, iop := range []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128} {
			fmt.Printf("  I_op = %6.1f ops/B -> %6.1f ops/cycle\n", iop, roofline.Processor(m.PeakOps, m.BWMemory, iop))
		}
	}
	if want("fig4") {
		ran = true
		section("")
		g := core.GemminiTarget().RooflineModel()
		fmt.Print(core.RenderFigure4(g))
	}
	if want("fig5") {
		ran = true
		section("")
		fmt.Print(core.RenderFigure5(core.OpenGeMMTarget().RooflineModel(), 8))
	}
	if want("example46") {
		ran = true
		section("")
		fmt.Print(core.RenderSection46())
	}
	if want("fig7") {
		ran = true
		section("Figure 2/7: execution timelines before/after optimization")
		out, err := core.RenderTimelines(core.OpenGeMMTarget(), 32, 100)
		if err != nil {
			fatal("fig7: %v", err)
		}
		fmt.Print(out)
	}
	if want("fig10") {
		ran = true
		section("")
		rows, err := core.Figure10(pick(core.Figure10Sizes), core.RunOptions{})
		if err != nil {
			fatal("fig10: %v", err)
		}
		fmt.Print(core.RenderFigure10(rows))
	}
	if want("fig11") {
		ran = true
		section("")
		rows, err := core.Figure11(pick(core.Figure11Sizes), core.RunOptions{})
		if err != nil {
			fatal("fig11: %v", err)
		}
		fmt.Print(core.RenderFigure11(rows))
	}
	if want("fig12") {
		ran = true
		section("")
		data, err := core.Figure12(pick(core.Figure12Sizes), core.RunOptions{})
		if err != nil {
			fatal("fig12: %v", err)
		}
		fmt.Print(core.RenderFigure12(data))
	}
	if !ran {
		fatal("unknown artifact %q (want table1|fig3|fig4|fig5|example46|fig7|fig10|fig11|fig12)", *only)
	}
}

func section(title string) {
	fmt.Println()
	if title != "" {
		fmt.Println(title)
	}
	fmt.Println(strings.Repeat("=", 76))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwbench: "+format+"\n", args...)
	os.Exit(1)
}
