// Command cwbench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index):
//
//	cwbench                    # run everything
//	cwbench -only fig11        # one artifact: table1, fig3, fig4, fig5,
//	                           # example46, fig7, fig10, fig11, fig12
//	cwbench -sizes 16,32,64    # override the size sweep
//	cwbench -workers 8         # experiment worker-pool bound (0 = all cores)
//	cwbench -cache-dir .cwcache  # persist results; reruns recompute nothing
//	cwbench -cache-dir .cwcache -shard 0/4   # precompute 1/4 of the grid
//	cwbench -cache-stats       # report cache hit/miss/run counters
//	cwbench -engine fast       # run every experiment on the fast engine
//	cwbench -cache-dir .cwcache -store-ls    # list the stored entries
//	cwbench -cpuprofile cw.pprof -only fig11  # pprof profile of a real sweep
//	cwbench -memprofile heap.pprof -only fig11  # post-GC heap profile at exit
//	cwbench -alloc-stats       # per-figure allocs/op and B/op on stderr
//	cwbench -bench-json BENCH.json            # micro-suite report (JSON)
//	cwbench -bench-compare BENCH_8.json       # fail on >20% regression
//	cwbench -calibrate model.json             # fit the analytical tier,
//	                                          # print constants + held-out
//	                                          # error report, write model
//	cwbench -fidelity screen -model model.json -only fig11  # zero-sim sweep
//	cwbench -fidelity topk -topk 8 -model model.json -only fig11
//
// All experiment cells run on one shared concurrent runner, so artifacts
// that revisit a cell (Figure 11 and Figure 12 share their base/all cells)
// never recompile it, and output is byte-identical to a serial run. With
// -cache-dir the runner is additionally backed by a persistent store: a
// repeated invocation simulates nothing, and a crashed or sharded sweep
// resumes exactly where the stored cells end. -shard i/m computes only the
// i-th stride of the figure grid and renders nothing — run one process per
// shard against the same -cache-dir, then a final plain invocation renders
// every figure from the store.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"configwall/internal/accel/gemmini"
	"configwall/internal/core"
	"configwall/internal/roofline"
	"configwall/internal/sim"
	"configwall/internal/store"
)

// artifact is one regenerable table/figure; run renders it to stdout, and
// grid (optional) lists its experiment cells for sharded precomputation.
type artifact struct {
	name  string
	title string
	run   func(b *bench) error
	grid  func(b *bench) []core.Experiment
}

// bench carries the shared state of one cwbench invocation.
type bench struct {
	runner *core.Runner
	sizes  []int           // overrides the per-figure defaults when non-empty
	opts   core.RunOptions // shared run options (engine selection)
}

func (b *bench) pick(def []int) []int {
	if len(b.sizes) > 0 {
		return b.sizes
	}
	return def
}

// artifacts lists every artifact in presentation order; -only matches on
// name, and unknown names report this list.
var artifacts = []artifact{
	{name: "table1", title: "Table 1: fields of the gemmini_loop_ws sequence", run: func(*bench) error {
		fmt.Print(gemmini.Table1())
		return nil
	}},
	{name: "fig3", title: "Figure 3: processor roofline", run: func(*bench) error {
		m := roofline.Model{Name: "generic", PeakOps: 512, BWConfig: 1, BWMemory: 16}
		fmt.Println("P_attainable = min(peak, BW_memory x I_operational)")
		for _, iop := range []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128} {
			fmt.Printf("  I_op = %6.1f ops/B -> %6.1f ops/cycle\n", iop, roofline.Processor(m.PeakOps, m.BWMemory, iop))
		}
		return nil
	}},
	{name: "fig4", run: func(*bench) error {
		g, err := core.LookupTarget("gemmini")
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure4(g.RooflineModel()))
		return nil
	}},
	{name: "fig5", run: func(*bench) error {
		o, err := core.LookupTarget("opengemm")
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure5(o.RooflineModel(), 8))
		return nil
	}},
	{name: "example46", run: func(*bench) error {
		fmt.Print(core.RenderSection46())
		return nil
	}},
	{name: "fig7", title: "Figure 2/7: execution timelines before/after optimization", run: func(*bench) error {
		o, err := core.LookupTarget("opengemm")
		if err != nil {
			return err
		}
		out, err := core.RenderTimelines(o, 32, 100)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}},
	{name: "fig10", run: func(b *bench) error {
		rows, err := core.Figure10With(context.Background(), b.runner, b.pick(core.Figure10Sizes), b.opts)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure10(rows))
		return nil
	}, grid: func(b *bench) []core.Experiment {
		return core.Figure10Experiments(b.pick(core.Figure10Sizes))
	}},
	{name: "fig11", run: func(b *bench) error {
		rows, err := core.Figure11With(context.Background(), b.runner, b.pick(core.Figure11Sizes), b.opts)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure11(rows))
		return nil
	}, grid: func(b *bench) []core.Experiment {
		return core.Figure11Experiments(b.pick(core.Figure11Sizes))
	}},
	{name: "fig12", run: func(b *bench) error {
		data, err := core.Figure12With(context.Background(), b.runner, b.pick(core.Figure12Sizes), b.opts)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderFigure12(data))
		return nil
	}, grid: func(b *bench) []core.Experiment {
		return core.Figure12Experiments(b.pick(core.Figure12Sizes))
	}},
}

func artifactNames() []string {
	names := make([]string, len(artifacts))
	for i, a := range artifacts {
		names[i] = a.name
	}
	return names
}

func main() {
	only := flag.String("only", "", "run a single artifact ("+strings.Join(artifactNames(), "|")+")")
	sizes := flag.String("sizes", "", "comma-separated matrix sizes overriding the per-figure defaults")
	workers := flag.Int("workers", 0, "experiment worker-pool bound (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "directory of the persistent experiment-result store (empty = in-memory only)")
	shardSpec := flag.String("shard", "", "precompute shard i/m of the figure grid into -cache-dir and render nothing (e.g. 0/4)")
	cacheStats := flag.Bool("cache-stats", false, "print runner cache statistics after the run")
	engineName := flag.String("engine", "ref", "simulator engine for every experiment ("+strings.Join(sim.EngineNames(), "|")+")")
	storeLS := flag.Bool("store-ls", false, "list the entries of -cache-dir (sorted by cache key) and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (post-GC live objects) to this file at exit")
	allocStats := flag.Bool("alloc-stats", false, "report per-figure allocation statistics (allocs/op, B/op) on stderr")
	benchJSON := flag.String("bench-json", "", "run the fixed micro-benchmark suite, write a JSON report to this file, and exit")
	benchCompare := flag.String("bench-compare", "", "run the micro-benchmark suite and exit non-zero on >20% regression against this baseline JSON")
	calibrate := flag.String("calibrate", "", "fit the analytical tier against the simulator, print constants + held-out error report, write the model JSON here, and exit (non-zero on band violation)")
	calibrateSeed := flag.Int64("calibrate-seed", 1, "train/holdout split seed for -calibrate and in-process -fidelity calibration")
	fidelity := flag.String("fidelity", "full", "prediction tier for figure sweeps (full|screen|topk, DESIGN.md §10)")
	topK := flag.Int("topk", 8, "cells simulated per figure grid with -fidelity topk")
	modelPath := flag.String("model", "", "calibrated analytic model JSON for -fidelity screen/topk (empty = calibrate in-process first)")
	flag.Parse()

	if *benchJSON != "" || *benchCompare != "" {
		runBenchMode(*benchJSON, *benchCompare)
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal("-cpuprofile: %v", err)
		}
		// fatal() exits without running deferred stops; profile-truncation
		// on a fatal error is acceptable for a diagnostics flag.
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cwbench: closing %s: %v\n", *cpuprofile, err)
			}
		}()
	}

	if *memprofile != "" {
		// Written on normal return only (like -cpuprofile): a post-GC heap
		// profile shows what the pools and caches retain at steady state.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cwbench: -memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "cwbench: -memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cwbench: closing %s: %v\n", *memprofile, err)
			}
		}()
	}

	engine, err := sim.EngineByName(*engineName)
	if err != nil {
		// Mirror the unknown -only behavior: fail fast, listing the valid
		// names, so a mistyped service config never runs the wrong engine.
		fatal("%v", err)
	}

	ropts := core.RunnerOptions{Workers: *workers}
	var st *store.DiskStore
	if *cacheDir != "" {
		if st, err = store.Open(*cacheDir); err != nil {
			fatal("%v", err)
		}
		ropts.Store = st
	}
	if *storeLS {
		if st == nil {
			fatal("-store-ls requires -cache-dir")
		}
		if err := listStore(st); err != nil {
			fatal("%v", err)
		}
		return
	}
	b := &bench{runner: core.NewRunnerWith(ropts), opts: core.RunOptions{Engine: engine}}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal("bad -sizes value %q: %v", s, err)
			}
			b.sizes = append(b.sizes, n)
		}
	}

	if *calibrate != "" {
		if err := runCalibrate(b.runner, *calibrate, *calibrateSeed); err != nil {
			fatal("-calibrate: %v", err)
		}
		return
	}
	if err := setupFidelity(b, *fidelity, *modelPath, *calibrateSeed, *topK, *only, *shardSpec != ""); err != nil {
		fatal("%v", err)
	}

	if *shardSpec != "" {
		if *cacheDir == "" {
			fatal("-shard requires -cache-dir (shards only communicate through the store)")
		}
		if err := precomputeShard(b, *only, *shardSpec); err != nil {
			fatal("%v", err)
		}
	} else {
		ran := false
		for _, a := range artifacts {
			if *only != "" && *only != a.name {
				continue
			}
			ran = true
			section(a.title)
			if err := runArtifact(b, a, *allocStats); err != nil {
				fatal("%s: %v", a.name, err)
			}
		}
		if !ran {
			fatal("unknown artifact %q (valid artifacts: %s)", *only, strings.Join(artifactNames(), ", "))
		}
	}

	if *cacheStats {
		fmt.Fprintf(os.Stderr, "cwbench: cache: %s\n", b.runner.Snapshot())
	}
}

// runArtifact renders one artifact; with -alloc-stats it additionally
// brackets the render with runtime.MemStats reads and reports the figure's
// allocation footprint on stderr — per simulated cell when the artifact has
// a sweep (allocs/op, B/op in the figure-regeneration sense: one op = one
// experiment cell), totals otherwise. Stats go to stderr so figure output
// stays byte-identical with and without the flag.
func runArtifact(b *bench, a artifact, allocStats bool) error {
	if !allocStats {
		return a.run(b)
	}
	runsBefore := b.runner.Snapshot().Runs
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	err := a.run(b)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	if cells := b.runner.Snapshot().Runs - runsBefore; cells > 0 {
		fmt.Fprintf(os.Stderr, "cwbench: alloc: %-9s %d cells, %.0f allocs/op, %s/op (total %d allocs, %s)\n",
			a.name, cells, float64(allocs)/float64(cells), humanBytes(bytes/cells), allocs, humanBytes(bytes))
	} else {
		fmt.Fprintf(os.Stderr, "cwbench: alloc: %-9s %d allocs, %s (no simulated cells)\n",
			a.name, allocs, humanBytes(bytes))
	}
	return err
}

// humanBytes renders a byte count with a binary-ish scale for log lines.
func humanBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// precomputeShard runs one strided shard of the selected artifacts'
// experiment grid, filling the persistent store without rendering.
func precomputeShard(b *bench, only, spec string) error {
	i, m, err := parseShard(spec)
	if err != nil {
		return err
	}
	if only != "" {
		known := false
		for _, a := range artifacts {
			known = known || a.name == only
		}
		if !known {
			return fmt.Errorf("unknown artifact %q (valid artifacts: %s)", only, strings.Join(artifactNames(), ", "))
		}
	}
	grid := figureGrid(b, only)
	if len(grid) == 0 {
		return fmt.Errorf("no experiment grid to shard (artifact %q has no sweep)", only)
	}
	part, err := core.Shard(grid, i, m)
	if err != nil {
		return err
	}
	if _, err := b.runner.RunAll(context.Background(), part, b.opts); err != nil {
		return err
	}
	s := b.runner.Snapshot()
	fmt.Printf("shard %d/%d: %d of %d grid cells (%d computed, %d already stored)\n",
		i, m, len(part), len(grid), s.Runs, s.StoreHits)
	return nil
}

// parseShard parses "i/m".
func parseShard(spec string) (i, m int, err error) {
	parts := strings.SplitN(spec, "/", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -shard %q: want i/m (e.g. 0/4)", spec)
	}
	i, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err == nil {
		m, err = strconv.Atoi(strings.TrimSpace(parts[1]))
	}
	if err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q: %v", spec, err)
	}
	return i, m, nil
}

// figureGrid unions (and dedupes) the experiment cells of every selected
// artifact that has a sweep, preserving presentation order.
func figureGrid(b *bench, only string) []core.Experiment {
	seen := map[core.Experiment]bool{}
	var grid []core.Experiment
	for _, a := range artifacts {
		if a.grid == nil || (only != "" && only != a.name) {
			continue
		}
		for _, e := range a.grid(b) {
			if !seen[e] {
				seen[e] = true
				grid = append(grid, e)
			}
		}
	}
	return grid
}

// listStore prints every enumerable entry of the persistent store, one
// line per cell in sorted cache-key order, for cache inspection.
func listStore(st *store.DiskStore) error {
	n := 0
	err := st.Each(func(e store.Entry) error {
		n++
		fmt.Printf("%-32s engine=%-4s trace=%-5t skipverify=%-5t cycles=%-10d verified=%t\n",
			e.Experiment, e.Options.Engine, e.Options.RecordTrace, e.Options.SkipVerify,
			e.Result.Cycles, e.Result.Verified)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("total: %d entries in %s\n", n, st.Dir())
	return nil
}

func section(title string) {
	fmt.Println()
	if title != "" {
		fmt.Println(title)
	}
	fmt.Println(strings.Repeat("=", 76))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwbench: "+format+"\n", args...)
	os.Exit(1)
}
