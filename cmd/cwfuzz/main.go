// Command cwfuzz runs differential-verification campaigns: it generates
// seeded random accfg programs (internal/irgen), runs each through the
// Baseline pipeline and every optimization pipeline on the co-simulator,
// and checks observational equivalence plus the paper's metamorphic claims
// (internal/difftest). Every compiled program additionally executes on
// every registered simulator engine (reference interpreter, predecoded
// fast engine and block-compiled engine, DESIGN.md §6, §8) and any
// disagreement in counters, final memory or summarized trace is a
// divergence — engine equivalence is a standing campaign invariant. The
// static config-state checker (internal/analysis) runs as a pre-oracle on
// every pipeline: statically rejected cases are reported without
// co-simulation, and every co-simulated case's dynamic outcome is
// cross-checked against the static verdict — a contradiction
// (static-disagree) fails the campaign even when no other divergence does.
// After the per-target campaigns, a standing analytic-bounds phase
// recalibrates the analytical prediction tier (internal/analytic) against
// the live simulator at the campaign seed and fails the run if any
// held-out prediction drifts outside the documented error band
// (analytic-bounds divergences, DESIGN.md §10).
// Programs execute concurrently on the shared
// experiment worker pool, but reports are input-ordered and byte-identical
// across runs with the same flags.
//
//	cwfuzz -seed 1 -n 500                  # full campaign, both targets
//	cwfuzz -seed 1 -n 200 -target gemmini  # one target
//	cwfuzz -corpus fuzz-corpus             # write minimized failures there
//	cwfuzz -replay corpus/gemmini-s42.ir   # re-check one saved module
//
// A failing program is automatically shrunk (delete launch blocks, loops,
// branches and fields while the divergence reproduces) and the minimized
// module is written to the corpus directory as <accel>-s<seed>.ir; the
// difftest corpus test replays those files forever after. Exit status is
// nonzero when any program diverges or fails to establish a baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"configwall/internal/analytic"
	"configwall/internal/core"
	"configwall/internal/difftest"
	"configwall/internal/ir"
	"configwall/internal/irgen"
	"configwall/internal/sim"
)

type programResult struct {
	index  int
	seed   int64
	stats  irgen.Stats
	report difftest.Report
	genErr error
}

func main() {
	seed := flag.Int64("seed", 1, "campaign seed; program i of target t runs irgen.DeriveSeed(seed, t, i)")
	n := flag.Int("n", 100, "programs per target")
	target := flag.String("target", "", "restrict to one registered target (default: all with a generator profile)")
	workers := flag.Int("workers", 0, "worker-pool bound (0 = GOMAXPROCS)")
	corpus := flag.String("corpus", "", "directory for minimized failing modules (empty = don't write)")
	noshrink := flag.Bool("noshrink", false, "skip test-case shrinking on failures")
	replay := flag.String("replay", "", "re-check one corpus module (<accel>-s<seed>.ir) instead of running a campaign")
	verbose := flag.Bool("v", false, "per-program output")
	flag.Parse()

	if *replay != "" {
		os.Exit(replayFile(*replay))
	}

	targets := targetList(*target)
	pipes := make([]string, 0, len(difftest.OptimizationPipelines()))
	for _, p := range difftest.OptimizationPipelines() {
		pipes = append(pipes, p.String())
	}
	fmt.Printf("cwfuzz: campaign seed=%d n=%d targets=%s pipelines=%s engine-xcheck=%s\n",
		*seed, *n, strings.Join(targets, ","), strings.Join(pipes, ","), strings.Join(sim.EngineNames(), "/"))

	failed := false
	for _, tn := range targets {
		if !runCampaign(tn, *seed, *n, *workers, *corpus, *noshrink, *verbose) {
			failed = true
		}
	}
	if !runAnalyticPhase(targets, *seed, *workers) {
		failed = true
	}
	if failed {
		fmt.Println("cwfuzz: FAIL")
		os.Exit(1)
	}
	fmt.Println("cwfuzz: PASS")
}

// runAnalyticPhase is the standing analytic-bounds invariant
// (KindAnalyticBounds): recalibrate the analytical prediction tier
// against the live simulator and fail the campaign if any held-out cell
// or per-target geomean drifts outside the documented error band. The
// phase is deterministic in the campaign seed — the same seed always
// fits the same training cells and validates the same held-out cells —
// so its output is byte-identical across reruns.
func runAnalyticPhase(targets []string, seed int64, workers int) bool {
	r := core.NewRunnerWith(core.RunnerOptions{Workers: workers})
	_, rep, divs, err := difftest.CheckAnalyticBounds(context.Background(), r,
		analytic.Spec{Targets: targets, Seed: seed})
	if err != nil {
		fmt.Printf("analytic: calibration error: %v\n", err)
		return false
	}
	for _, tr := range rep.Targets {
		violations := len(tr.Violations(rep.Band))
		if tr.GeomeanErr > rep.Band.Geomean {
			violations++
		}
		fmt.Printf("%s: analytic bounds: %d held-out cells, geomean cycle error %.1f%%, max %.1f%%, %d violations\n",
			tr.Target, len(tr.Cells), 100*tr.GeomeanErr, 100*tr.MaxErr, violations)
	}
	for _, d := range divs {
		fmt.Printf("  %s\n", d)
	}
	return len(divs) == 0
}

// targetList resolves the targets to fuzz, sorted (TargetNames is sorted).
func targetList(only string) []string {
	if only != "" {
		if _, err := irgen.ProfileFor(only); err != nil {
			fatal("%v", err)
		}
		if _, err := core.LookupTarget(only); err != nil {
			fatal("%v", err)
		}
		return []string{only}
	}
	var out []string
	for _, name := range core.TargetNames() {
		if _, err := irgen.ProfileFor(name); err == nil {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		fatal("no registered target has a generator profile")
	}
	return out
}

// runCampaign fuzzes one target; reports whether it was clean.
func runCampaign(tn string, seed int64, n, workers int, corpus string, noshrink, verbose bool) bool {
	tgt, err := core.LookupTarget(tn)
	if err != nil {
		fatal("%v", err)
	}
	prof, err := irgen.ProfileFor(tn)
	if err != nil {
		fatal("%v", err)
	}

	results := make([]programResult, n)
	core.ParallelEach(context.Background(), n, workers, func(i int) {
		r := &results[i]
		r.index = i
		r.seed = irgen.DeriveSeed(seed, tn, i)
		prog, err := irgen.Generate(prof, r.seed)
		if err != nil {
			r.genErr = err
			return
		}
		r.stats = prog.Stats
		r.report = difftest.Check(tgt, prog, difftest.Options{})
	})

	var total irgen.Stats
	invalid, divergent, genErrs := 0, 0, 0
	proved, inconclusive, rejected, disagreements := 0, 0, 0, 0
	for i := range results {
		r := &results[i]
		total.Setups += r.stats.Setups
		total.Launches += r.stats.Launches
		total.Loops += r.stats.Loops
		total.Ifs += r.stats.Ifs
		for _, s := range r.report.Static {
			switch {
			case s.Rejected:
				rejected++
			case s.Proved:
				proved++
			default:
				inconclusive++
			}
			if s.Disagree {
				disagreements++
			}
		}
		switch {
		case r.genErr != nil:
			genErrs++
			fmt.Printf("%s: program %d (seed %d) GENERATOR ERROR: %v\n", tn, r.index, r.seed, r.genErr)
		case r.report.Invalid:
			invalid++
			fmt.Printf("%s: program %d (seed %d) BASELINE INVALID: %s\n", tn, r.index, r.seed, r.report.InvalidReason)
		case r.report.Diverged():
			divergent++
			fmt.Printf("%s: program %d (seed %d) DIVERGED:\n", tn, r.index, r.seed)
			for _, d := range r.report.Divergences {
				fmt.Printf("  %s\n", d)
			}
			if !noshrink {
				shrinkAndSave(tgt, prof, r, corpus)
			}
		case verbose:
			fmt.Printf("%s: program %d (seed %d) ok (%d setups, %d launches, %d loops, %d branches)\n",
				tn, r.index, r.seed, r.stats.Setups, r.stats.Launches, r.stats.Loops, r.stats.Ifs)
		}
	}

	checks := (n - invalid - genErrs) * len(difftest.OptimizationPipelines())
	fmt.Printf("%s: %d programs (%d setups, %d launches, %d loops, %d branches), %d pipeline checks, %d invalid, %d generator errors, %d divergent\n",
		tn, n, total.Setups, total.Launches, total.Loops, total.Ifs, checks, invalid, genErrs, divergent)
	fmt.Printf("%s: static verdicts: %d proved, %d inconclusive, %d rejected, %d disagreements\n",
		tn, proved, inconclusive, rejected, disagreements)
	return invalid == 0 && divergent == 0 && genErrs == 0 && disagreements == 0
}

// shrinkAndSave minimizes the first divergence of a failing program and
// writes the witness to the corpus directory.
func shrinkAndSave(tgt core.Target, prof irgen.Profile, r *programResult, corpus string) {
	prog, err := irgen.Generate(prof, r.seed)
	if err != nil {
		return
	}
	before := ir.CountOps(prog.Module)
	sh := difftest.Shrink(tgt, prog, r.report.Divergences[0], difftest.Options{})
	fmt.Printf("  shrunk %d -> %d ops (%d steps, %d attempts)\n", before, sh.Ops, sh.Steps, sh.Attempts)
	if corpus == "" {
		return
	}
	if err := os.MkdirAll(corpus, 0o755); err != nil {
		fmt.Printf("  corpus: %v\n", err)
		return
	}
	name := filepath.Join(corpus, difftest.CorpusName(tgt.Name, r.seed))
	if err := os.WriteFile(name, []byte(ir.PrintModule(sh.Module)), 0o644); err != nil {
		fmt.Printf("  corpus: %v\n", err)
		return
	}
	fmt.Printf("  wrote %s\n  reproduce: cwfuzz -replay %s\n", name, name)
}

// replayFile re-checks one corpus module; returns the process exit code.
func replayFile(file string) int {
	rep, err := difftest.Replay(file, difftest.Options{})
	if err != nil {
		fatal("%v", err)
	}
	if rep.Invalid {
		fmt.Printf("cwfuzz: %s: baseline invalid: %s\n", file, rep.InvalidReason)
		return 1
	}
	if rep.Diverged() {
		fmt.Printf("cwfuzz: %s: still diverges:\n", file)
		for _, d := range rep.Divergences {
			fmt.Printf("  %s\n", d)
		}
		return 1
	}
	fmt.Printf("cwfuzz: %s: clean (no divergence)\n", file)
	return 0
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwfuzz: "+format+"\n", args...)
	os.Exit(1)
}
