package main

// Fail-fast UX tests: unknown -strategy/-target/-workload values must be
// rejected with the full list of valid names (the cwsim -engine /
// cwopt -p convention), so a misconfigured campaign dies before it spends
// a single simulation.

import (
	"strings"
	"testing"

	"configwall/internal/serve"
	"configwall/internal/tune"
)

// testInfo is a registry response like an in-process daemon's.
var testInfo = serve.RegistryInfo{
	Targets:   []string{"gemmini", "opengemm"},
	Workloads: []string{"matmul", "matvec", "rectmm"},
	Pipelines: []string{"base", "dedup", "overlap", "all"},
	Engines:   []string{"ref", "fast", "compiled"},
	MaxN:      1024,
	Sizes: map[string]map[string][]int{
		"matmul": {"gemmini": {16, 32, 48, 64}, "opengemm": {8, 16, 24, 32, 48, 64}},
		"matvec": {"gemmini": {16, 32, 48, 64}, "opengemm": {8, 16, 24, 32, 48, 64}},
		"rectmm": {"gemmini": {32, 64}, "opengemm": {16, 32, 48, 64}},
	},
}

func TestResolveStrategiesUnknownListsValidNames(t *testing.T) {
	_, err := resolveStrategies("random,gradient")
	if err == nil {
		t.Fatal("resolveStrategies accepted an unknown strategy")
	}
	for _, name := range tune.StrategyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid strategy %q", err, name)
		}
	}
	if _, err := resolveStrategies(""); err == nil {
		t.Error("resolveStrategies accepted an empty list")
	}
}

func TestBuildSpaceUnknownTargetListsValidNames(t *testing.T) {
	_, err := buildSpace(testInfo, "tpu", "", "", 0, 1)
	if err == nil {
		t.Fatal("buildSpace accepted an unknown target")
	}
	for _, name := range testInfo.Targets {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid target %q", err, name)
		}
	}
}

func TestBuildSpaceUnknownWorkloadListsValidNames(t *testing.T) {
	_, err := buildSpace(testInfo, "", "conv2d", "", 0, 1)
	if err == nil {
		t.Fatal("buildSpace accepted an unknown workload")
	}
	for _, name := range testInfo.Workloads {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid workload %q", err, name)
		}
	}
}

func TestBuildSpaceUnknownPipelineListsValidNames(t *testing.T) {
	_, err := buildSpace(testInfo, "", "", "hoist", 0, 1)
	if err == nil {
		t.Fatal("buildSpace accepted an unknown pipeline")
	}
	for _, name := range testInfo.Pipelines {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid pipeline %q", err, name)
		}
	}
}

func TestBuildSpaceValid(t *testing.T) {
	sp, err := buildSpace(testInfo, "opengemm", "matmul", "base,all", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := len(sp.Cells) + len(sp.Holdout)
	// opengemm matmul sizes ≤ 32: {8,16,24,32} × 2 pipelines.
	if total != 8 {
		t.Fatalf("space has %d cells, want 8", total)
	}
	for _, e := range sp.Cells {
		if e.Target != "opengemm" || e.Workload != "matmul" || e.N > 32 {
			t.Errorf("unexpected cell %s", e)
		}
	}
}
