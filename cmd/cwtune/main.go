// Command cwtune is the configuration-search client: it discovers the
// (target × workload × pipeline × size) space from a cwserve daemon's
// /v1/registry, runs a seeded campaign of pluggable search strategies
// under equal simulation budgets, and prints the deterministic comparison
// report — sims-to-best-config per strategy against an exhaustive-sweep
// ground truth, plus held-out validation of each winner (DESIGN.md §12).
//
//	cwtune -url http://127.0.0.1:8080 -seed 1 -budget 16
//	cwtune -target opengemm -max-size 64 -cache-dir .cwtune
//
// Without -url, cwtune boots an in-process daemon (loopback listener,
// optional persistent store) and, when the flash strategy is requested,
// calibrates the analytic surrogate at boot exactly like cwserve
// -analytic. All measurement traffic — including the in-process mode —
// goes through the serve.Client retry/resume layer, so backpressure and
// transient faults are absorbed, and concurrent tuners sharing a daemon
// coalesce onto one simulation per distinct cell.
//
// The report on stdout is a pure function of (registry, seed, budget,
// flags): rerunning with equal inputs yields byte-identical output.
// Wall-clock timings and progress go to stderr only.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"configwall/internal/analytic"
	"configwall/internal/core"
	"configwall/internal/serve"
	"configwall/internal/sim"
	"configwall/internal/store"
	"configwall/internal/tune"
)

func main() {
	url := flag.String("url", "", "cwserve base URL (empty = boot an in-process daemon)")
	seed := flag.Int64("seed", 1, "campaign seed: search randomness, the holdout split and retry jitter all derive from it")
	budget := flag.Int("budget", 0, "per-strategy simulation budget in distinct cells (0 = the full space)")
	strategyFlag := flag.String("strategy", "random,halving,flash", "comma-separated strategies to compare ("+strings.Join(tune.StrategyNames(), "|")+")")
	targetFlag := flag.String("target", "", "comma-separated target filter (empty = all registered)")
	workloadFlag := flag.String("workload", "", "comma-separated workload filter (empty = all registered)")
	pipelineFlag := flag.String("pipeline", "", "comma-separated pipeline filter (empty = all)")
	maxSize := flag.Int("max-size", 0, "drop cells with sweep size above this (0 = the registry's cap)")
	engine := flag.String("engine", "", "simulator engine ("+strings.Join(sim.EngineNames(), "|")+"; empty = ref)")
	cacheDir := flag.String("cache-dir", "", "persistent store for the in-process daemon (ignored with -url)")
	noValidate := flag.Bool("no-validate", false, "skip measuring winners at the held-out sizes")
	flag.Parse()

	strategies, err := resolveStrategies(*strategyFlag)
	if err != nil {
		fatal("%v", err)
	}
	var opts core.RunOptions
	if *engine != "" {
		if opts.Engine, err = sim.EngineByName(*engine); err != nil {
			fatal("%v", err)
		}
	}

	ctx := context.Background()
	var client *serve.Client
	if *url != "" {
		client = serve.NewClient(*url)
	} else {
		var shutdown func()
		if client, shutdown, err = bootDaemon(*cacheDir, needsAnalytic(strategies), *seed); err != nil {
			fatal("%v", err)
		}
		defer shutdown()
	}

	info, err := client.Registry(ctx)
	if err != nil {
		fatal("registry: %v", err)
	}
	if needsAnalytic(strategies) && !info.Analytic {
		fatal("the flash strategy screens through the daemon's analytic tier, but %s has none (boot cwserve with -analytic)", client.Base)
	}
	space, err := buildSpace(info, *targetFlag, *workloadFlag, *pipelineFlag, *maxSize, *seed)
	if err != nil {
		fatal("%v", err)
	}
	logf("space: %d searchable cells, %d held out (sizes %v)", len(space.Cells), len(space.Holdout), space.HoldoutSizes)

	rep, err := tune.Run(ctx, tune.Config{
		Space:      space,
		Eval:       &tune.ClientEvaluator{Client: client, Retry: serve.RetryPolicy{Seed: *seed}, Opts: opts},
		Strategies: strategies,
		Budget:     *budget,
		Seed:       *seed,
		Validate:   !*noValidate,
	})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(rep.String())
	logf("%s", rep.WallSummary())
}

// resolveStrategies validates the -strategy list, failing fast with the
// full list of valid names on an unknown entry.
func resolveStrategies(csv string) ([]string, error) {
	names := splitList(csv)
	if len(names) == 0 {
		return nil, fmt.Errorf("no strategies requested (valid strategies: %s)", strings.Join(tune.StrategyNames(), ", "))
	}
	for _, n := range names {
		if _, err := tune.StrategyByName(n); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// buildSpace turns the flag filters and the daemon's registry into the
// search space; unknown -target/-workload/-pipeline names fail fast with
// the registry's full valid list.
func buildSpace(info serve.RegistryInfo, targets, workloads, pipelines string, maxSize int, seed int64) (tune.Space, error) {
	return tune.SpaceFromRegistry(info, tune.Filters{
		Targets:   splitList(targets),
		Workloads: splitList(workloads),
		Pipelines: splitList(pipelines),
		MaxSize:   maxSize,
	}, seed)
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// needsAnalytic reports whether any requested strategy screens through
// the daemon's analytic surrogate.
func needsAnalytic(strategies []string) bool {
	for _, n := range strategies {
		if n == "flash" {
			return true
		}
	}
	return false
}

// bootDaemon starts the in-process serving daemon on a loopback listener:
// a store-backed runner (calibration and campaign cells persist across
// reruns with -cache-dir), the analytic tier when a strategy needs it,
// and the full serve.Server stack — so even a single-process tune goes
// through admission, coalescing and the retry client like production
// traffic. It returns a client for the daemon and a shutdown func.
func bootDaemon(cacheDir string, analyticTier bool, seed int64) (*serve.Client, func(), error) {
	ropts := core.RunnerOptions{}
	ropts.OnStoreError = func(op string, e core.Experiment, err error) {
		logf("store %s failed for %s (results non-durable): %v", op, e, err)
	}
	var st *store.DiskStore
	if cacheDir != "" {
		var err error
		if st, err = store.Open(cacheDir); err != nil {
			return nil, nil, err
		}
		ropts.Store = st
	}
	runner := core.NewRunnerWith(ropts)

	if analyticTier {
		logf("calibrating analytic surrogate (seed %d)", seed)
		model, rep, err := analytic.Calibrate(context.Background(), runner, analytic.Spec{Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		if !rep.Clean() {
			return nil, nil, fmt.Errorf("surrogate calibration violates its error band:\n%s", rep)
		}
		runner.SetPredictor(model)
	}

	sv, err := serve.New(serve.Options{Runner: runner})
	if err != nil {
		return nil, nil, err
	}
	if st != nil {
		warmed, err := sv.WarmFromStore(context.Background(), st)
		if err != nil {
			return nil, nil, fmt.Errorf("warming from %s: %w", cacheDir, err)
		}
		logf("warmed %d cells from %s", warmed, cacheDir)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	httpSrv := &http.Server{Handler: sv}
	go httpSrv.Serve(ln)
	shutdown := func() {
		sv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		sv.Close()
	}
	return serve.NewClient("http://" + ln.Addr().String()), shutdown, nil
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwtune: "+format+"\n", args...)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwtune: "+format+"\n", args...)
	os.Exit(1)
}
