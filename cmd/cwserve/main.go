// Command cwserve is the experiment-serving daemon: it exposes the
// memoized concurrent runner and the persistent disk store over an HTTP
// JSON API, so autotuners, dashboards and sweep drivers share one
// measurement cache with request coalescing and admission-controlled
// backpressure (DESIGN.md §7).
//
//	cwserve -addr :8080 -cache-dir .cwcache
//	cwserve -addr 127.0.0.1:9000 -concurrency 4 -queue-depth 32 -queue-timeout 10s
//
// Endpoints:
//
//	GET  /v1/run?target=T&workload=W&pipeline=P&n=N[&engine=E][&trace=B][&skipverify=B]
//	     Measure one experiment cell. The JSON body is byte-identical to
//	     json.Marshal of a direct Runner.Run result. Identical concurrent
//	     requests coalesce onto one simulation.
//	POST /v1/run
//	     Same, with a JSON body: {"target","workload","pipeline","n",
//	     "engine","record_trace","skip_verify"}.
//	POST /v1/sweep
//	     Expand and run a grid: {"targets":[],"workloads":[],
//	     "pipelines":[],"sizes":[],"engine","record_trace","skip_verify",
//	     "stream":true|false}. With stream (the default) the response is
//	     NDJSON: one {"index","experiment","result"|"error"} event per
//	     cell in completion order, then {"done":true,"cells","failed"}.
//	     With "stream":false the response is one JSON array in input
//	     order. With -analytic the request may add "fidelity":"screen"
//	     (every cell answered analytically, zero simulations) or
//	     "fidelity":"topk" with "top_k":K (only the K best-predicted
//	     cells simulated); per-tier cell counts are exported as
//	     cwserve_sweep_cells_total{tier="analytic"|"simulated"}.
//	GET  /v1/registry
//	     Registered targets, workloads, pipelines and engines.
//	GET  /metrics
//	     Prometheus text exposition: cache hit/miss/run/evict counters,
//	     queue depth and slot gauges, coalescing and rejection counters,
//	     per-endpoint latency histograms.
//	GET  /healthz
//	     200 "ok" while serving; 200 "degraded" when the persistent
//	     store has failed at least once (results still serve from
//	     memory but stopped being durable); 503 once draining.
//
// Responses: 400 names the invalid field and lists the valid registry
// names (requests above -max-n or -max-sweep-cells are also 400); 429
// (with Retry-After) is admission backpressure — the queue was full or
// the queue wait timed out; 503 means the server is draining.
//
// On SIGTERM/SIGINT the daemon drains gracefully: /healthz flips to 503,
// new experiment requests are rejected, in-flight requests finish (up to
// -drain-timeout), then the process exits 0.
//
// With -cache-dir the runner is backed by the persistent store and, at
// boot, warmed from it: every enumerable entry is preloaded into memory,
// so a restarted daemon answers everything a previous life measured
// without re-simulating (disable with -no-warm). Use cwload to
// benchmark a running daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"configwall/internal/analytic"
	"configwall/internal/core"
	"configwall/internal/serve"
	"configwall/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "directory of the persistent experiment-result store (empty = in-memory only)")
	workers := flag.Int("workers", 0, "experiment worker-pool bound (0 = GOMAXPROCS)")
	maxCells := flag.Int("max-cells", 0, "LRU bound on the in-memory cell map (0 = unbounded)")
	concurrency := flag.Int("concurrency", 0, "max distinct experiment cells computing at once (0 = worker bound)")
	queueDepth := flag.Int("queue-depth", 0, "max distinct-cell requests waiting for a slot (0 = default 64, negative = no queue)")
	queueTimeout := flag.Duration("queue-timeout", 0, "max queue wait before a 429 (0 = default 30s)")
	maxSweepCells := flag.Int("max-sweep-cells", 0, "cap on one sweep's expanded grid (0 = default 4096)")
	maxN := flag.Int("max-n", 0, "cap on any requested sweep size n (0 = default 1024)")
	noWarm := flag.Bool("no-warm", false, "skip preloading the in-memory cache from -cache-dir at boot")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on SIGTERM")
	analyticFit := flag.Bool("analytic", false, "calibrate the analytical prediction tier at boot (enables /v1/sweep fidelity screen/topk)")
	analyticModel := flag.String("analytic-model", "", "load a calibrated analytic model JSON (cwbench -calibrate) instead of fitting at boot; implies -analytic")
	analyticSeed := flag.Int64("analytic-seed", 1, "train/holdout split seed for the boot-time -analytic calibration")
	flag.Parse()

	ropts := core.RunnerOptions{Workers: *workers, MaxCells: *maxCells}
	// Store failures degrade the daemon instead of failing requests:
	// results keep serving from memory, /healthz reports "degraded", and
	// every tolerated failure is logged here so operators see what broke.
	ropts.OnStoreError = func(op string, e core.Experiment, err error) {
		logf("store %s failed for %s (serving degraded, results non-durable): %v", op, e, err)
	}
	var st *store.DiskStore
	if *cacheDir != "" {
		var err error
		if st, err = store.Open(*cacheDir); err != nil {
			fatal("%v", err)
		}
		ropts.Store = st
	}
	runner := core.NewRunnerWith(ropts)

	if *analyticFit || *analyticModel != "" {
		if err := attachAnalytic(runner, *analyticModel, *analyticSeed); err != nil {
			fatal("%v", err)
		}
	}

	sv, err := serve.New(serve.Options{
		Runner:        runner,
		Concurrency:   *concurrency,
		QueueDepth:    *queueDepth,
		QueueTimeout:  *queueTimeout,
		MaxSweepCells: *maxSweepCells,
		MaxN:          *maxN,
	})
	if err != nil {
		fatal("%v", err)
	}

	if st != nil && !*noWarm {
		warmed, err := sv.WarmFromStore(context.Background(), st)
		if err != nil {
			fatal("warming from %s: %v", *cacheDir, err)
		}
		logf("warmed %d cells from %s", warmed, *cacheDir)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: sv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logf("serving on %s (workers=%d)", *addr, runner.Workers())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal("%v", err)
	case <-ctx.Done():
	}

	logf("signal received; draining (timeout %v)", *drainTimeout)
	sv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("shutdown: %v", err)
	}
	sv.Close()
	logf("drained; %s", runner.Snapshot())
}

// attachAnalytic installs the analytical prediction tier on the runner:
// a committed model file when given, a boot-time calibration against the
// simulator otherwise. A calibration that violates its own error band is
// fatal — a daemon must not screen sweeps with an out-of-band model. With
// -cache-dir the calibration cells land in the store, so the next boot's
// fit re-simulates nothing.
func attachAnalytic(runner *core.Runner, modelPath string, seed int64) error {
	if modelPath != "" {
		model, err := analytic.ReadModel(modelPath)
		if err != nil {
			return err
		}
		runner.SetPredictor(model)
		logf("analytic tier loaded from %s (calibration seed %d)", modelPath, model.Seed)
		return nil
	}
	logf("calibrating analytic tier (seed %d)", seed)
	model, rep, err := analytic.Calibrate(context.Background(), runner, analytic.Spec{Seed: seed})
	if err != nil {
		return err
	}
	if !rep.Clean() {
		return fmt.Errorf("boot calibration violates its error band:\n%s", rep)
	}
	for _, tr := range rep.Targets {
		logf("analytic %s: %d held-out cells, geomean cycle error %.1f%%, max %.1f%%",
			tr.Target, len(tr.Cells), 100*tr.GeomeanErr, 100*tr.MaxErr)
	}
	runner.SetPredictor(model)
	return nil
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwserve: "+format+"\n", args...)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwserve: "+format+"\n", args...)
	os.Exit(1)
}
