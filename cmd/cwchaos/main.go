// Command cwchaos is the seeded chaos-campaign driver: it boots an
// in-process cwserve daemon over a fault-injected store and transport,
// replays a deterministic request mix through the self-healing client
// while panics, resets, timeouts, truncations and store failures fire on
// schedule, and asserts the robustness invariants of DESIGN.md §11:
//
//   - byte-identity: every eventually-successful response is
//     byte-identical to a fault-free run's response for that cell;
//   - no duplicate simulations: the runner simulated each distinct cell
//     exactly once, no matter how many faults and retries surrounded it;
//   - degraded, never broken: store failures cost durability (/healthz
//     reports "degraded", the error counters advance) but never fail a
//     request, and every tolerated store error is accounted for;
//   - reboot-safe: a fresh daemon warms from whatever the faulted store
//     managed to persist — torn entries degrade to misses — and still
//     answers every cell byte-identically;
//   - no leaks: recovered panics leak no admission slots, no in-flight
//     cells and no goroutines.
//
// The whole campaign derives from -seed: the fault schedule, the zipf
// request mix and the retry jitter. The report on stdout is
// byte-identical across same-seed reruns (wall-clock timings go to
// stderr), so CI runs a campaign twice and diffs the two reports. Exit
// status is non-zero if any invariant is violated.
//
//	cwchaos -seed 1
//	cwchaos -seed 7 -n 5000 -sweeps 3
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"configwall/internal/core"
	"configwall/internal/fault"
	"configwall/internal/serve"
	"configwall/internal/store"
)

func main() {
	seed := flag.Int64("seed", 1, "campaign seed: fault schedule, request mix and retry jitter all derive from it")
	n := flag.Int("n", 1200, "zipf-mixed requests after the one-per-cell coverage pass")
	sweeps := flag.Int("sweeps", 2, "streaming sweeps (the first is cut mid-stream to force a resume)")
	flag.Parse()
	os.Exit(run(*seed, *n, *sweeps))
}

// campaign accumulates the deterministic report and the violations.
type campaign struct {
	report     strings.Builder
	violations []string
}

func (c *campaign) reportf(format string, args ...any) {
	fmt.Fprintf(&c.report, "cwchaos: "+format+"\n", args...)
}

func (c *campaign) violate(format string, args ...any) {
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

func run(seed int64, n, sweeps int) int {
	ctx := context.Background()
	c := &campaign{}
	start := time.Now()

	// The experiment universe doubles as the sweep grid, so "no duplicate
	// simulations" has one exact expectation: Runs == len(universe).
	targets := []string{"opengemm"}
	workloads := []string{core.WorkloadMatmul}
	pipeNames := []string{"base", "all"}
	sizes := []int{8, 16, 24, 32}
	pipes := make([]core.Pipeline, len(pipeNames))
	for i, name := range pipeNames {
		var err error
		if pipes[i], err = core.PipelineByName(name); err != nil {
			fatal("%v", err)
		}
	}
	universe := core.Sweep(targets, workloads, pipes, sizes)
	var opts core.RunOptions

	// Fault-free reference bodies, computed on a private runner before any
	// fault plan exists.
	canonical, err := serve.CanonicalBodies(ctx, universe, opts)
	if err != nil {
		fatal("computing canonical bodies: %v", err)
	}
	logf("canonical bodies for %d cells in %v", len(universe), time.Since(start).Round(time.Millisecond))

	// Goroutine baseline: everything started after this point must be gone
	// by the end of the campaign.
	runtime.GC()
	goroutines0 := runtime.NumGoroutine()

	// The fault schedule. Store and serve sites see few passages (one
	// load/save per distinct cell, one run per computation), so their
	// rates are high; transport sites see every one of the thousands of
	// client attempts, so their rates are low and their budgets capped.
	plan := fault.New(seed, map[fault.Site]fault.Rule{
		fault.StoreSaveFail:        {Rate: 0.5, Max: 3},
		fault.StoreSaveTorn:        {Rate: 0.5, Max: 2},
		fault.StoreLoadErr:         {Rate: 0.5, Max: 3},
		fault.StoreLoadSlow:        {Rate: 0.5, Max: 3, Delay: 2 * time.Millisecond},
		fault.TransportReset:       {Rate: 0.01, Max: 6},
		fault.TransportTimeout:     {Rate: 0.01, Max: 4},
		fault.TransportUnavailable: {Rate: 0.01, Max: 4},
		fault.TransportTruncate:    {Rate: 0.01, Max: 6},
		fault.ServeHandlerPanic:    {Rate: 0.005, Max: 3},
		fault.ServeRunPanic:        {Rate: 1, Max: 2},
	})
	// The sweep phase gets its own transport plan with a deterministic
	// first-stream cut and a reset on the first resume, so the resume path
	// is exercised on every campaign regardless of the main plan's budget.
	sweepPlan := fault.New(seed+1, map[fault.Site]fault.Rule{
		fault.TransportTruncate: {Rate: 1, Max: 1},
		fault.TransportReset:    {Rate: 1, After: 1, Max: 1},
	})

	dir, err := os.MkdirTemp("", "cwchaos-*")
	if err != nil {
		fatal("%v", err)
	}
	defer os.RemoveAll(dir)
	disk, err := store.Open(dir)
	if err != nil {
		fatal("%v", err)
	}

	// One worker, one slot, one sequential client: every fault site's
	// passage order is deterministic, so the decision streams replay
	// exactly on a same-seed rerun.
	runner := core.NewRunnerWith(core.RunnerOptions{
		Workers: 1,
		Store:   &fault.Store{Inner: disk, Disk: disk, Plan: plan},
	})
	sv, err := serve.New(serve.Options{Runner: runner, Concurrency: 1, Fault: plan})
	if err != nil {
		fatal("%v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("%v", err)
	}
	httpSrv := &http.Server{Handler: sv}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	logf("daemon on %s, store in %s", base, dir)

	client := serve.NewClient(base)
	client.HTTPClient = &http.Client{
		Transport: &fault.Transport{Base: http.DefaultTransport, Plan: plan, RetryAfter: 1},
	}
	requestRetries := 0
	pol := serve.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    25 * time.Millisecond,
		Seed:        seed,
		OnRetry:     func(int, time.Duration, error) { requestRetries++ },
	}

	// Phase 1 — requests: a coverage pass (every cell once, so the sweeps
	// later replay from memory) then the zipf-skewed mix, every response
	// checked byte-identical to the fault-free reference.
	phaseStart := time.Now()
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(universe)-1))
	seq := make([]int, 0, len(universe)+n)
	for i := range universe {
		seq = append(seq, i)
	}
	for i := 0; i < n; i++ {
		seq = append(seq, int(zipf.Uint64()))
	}
	identical := 0
	for i, cell := range seq {
		e := universe[cell]
		body, err := client.RunRawWithRetry(ctx, e, opts, pol)
		if err != nil {
			c.violate("request %d (%s) failed through all retries: %v", i, e, err)
			continue
		}
		if string(body) != string(canonical[core.FingerprintKey(e, opts)]) {
			c.violate("request %d (%s): body differs from the fault-free reference", i, e)
			continue
		}
		identical++
	}
	c.reportf("phase request: %d requests over %d cells, %d healed by retry, %d byte-identical",
		len(seq), len(universe), requestRetries, identical)
	logf("request phase in %v", time.Since(phaseStart).Round(time.Millisecond))

	// Phase 2 — sweeps with resume: the dedicated transport plan cuts the
	// first stream and resets the first resume; every delivered cell must
	// be byte-identical and delivered exactly once.
	phaseStart = time.Now()
	sweepClient := serve.NewClient(base)
	sweepClient.HTTPClient = &http.Client{
		Transport: &fault.Transport{Base: http.DefaultTransport, Plan: sweepPlan, RetryAfter: 1},
	}
	sweepRetries := 0
	sweepPol := pol
	sweepPol.OnRetry = func(int, time.Duration, error) { sweepRetries++ }
	rq := serve.SweepRequest{Targets: targets, Workloads: workloads, Pipelines: pipeNames, Sizes: sizes}
	sweepCells := 0
	for s := 0; s < sweeps; s++ {
		delivered := map[int]bool{}
		summary, err := sweepClient.SweepWithResume(ctx, rq, sweepPol, func(ev serve.SweepEvent) error {
			if ev.Error != "" {
				c.violate("sweep %d cell %v failed: %s", s, ev.Index, ev.Error)
				return nil
			}
			if ev.Index == nil || ev.Experiment == nil || ev.Result == nil {
				c.violate("sweep %d: malformed cell event", s)
				return nil
			}
			if delivered[*ev.Index] {
				c.violate("sweep %d cell %d delivered twice", s, *ev.Index)
				return nil
			}
			delivered[*ev.Index] = true
			body, err := json.Marshal(*ev.Result)
			if err != nil {
				return err
			}
			if string(body) != string(canonical[core.FingerprintKey(*ev.Experiment, opts)]) {
				c.violate("sweep %d cell %d (%s): result differs from the fault-free reference", s, *ev.Index, *ev.Experiment)
			}
			sweepCells++
			return nil
		})
		if err != nil {
			c.violate("sweep %d failed through all retries: %v", s, err)
			continue
		}
		if summary.Cells != len(universe) || summary.Failed != 0 || summary.Status != "ok" {
			c.violate("sweep %d trailer: cells=%d failed=%d status=%q, want %d/0/ok",
				s, summary.Cells, summary.Failed, summary.Status, len(universe))
		}
		if len(delivered) != len(universe) {
			c.violate("sweep %d delivered %d of %d cells", s, len(delivered), len(universe))
		}
	}
	c.reportf("phase sweep: %d sweeps x %d cells, %d cells delivered exactly once, %d stream drops resumed",
		sweeps, len(universe), sweepCells, sweepRetries)
	logf("sweep phase in %v", time.Since(phaseStart).Round(time.Millisecond))

	// Invariant — no duplicate simulations: faults and retries may re-ask
	// any question, but the memoized runner must have simulated each
	// distinct cell exactly once.
	counts := plan.Counts()
	stats := runner.Snapshot()
	if stats.Runs != uint64(len(universe)) {
		c.violate("runner simulated %d times for %d distinct cells", stats.Runs, len(universe))
	}
	c.reportf("simulations: %d for %d distinct cells", stats.Runs, len(universe))

	// Invariant — degraded, never broken: every injected store failure is
	// accounted for in StoreErrors, and /healthz reports exactly the
	// degradation the schedule caused.
	injectedStoreErrs := counts[fault.StoreSaveFail].Fired + counts[fault.StoreLoadErr].Fired
	if stats.StoreErrors != uint64(injectedStoreErrs) {
		c.violate("StoreErrors = %d, want the %d injected store failures", stats.StoreErrors, injectedStoreErrs)
	}
	wantHealth := "ok"
	if injectedStoreErrs > 0 {
		wantHealth = "degraded"
	}
	health, err := probe(client.HTTPClient, base+"/healthz")
	if err != nil {
		c.violate("healthz probe: %v", err)
	} else if health != wantHealth {
		c.violate("healthz = %q, want %q after %d injected store failures", health, wantHealth, injectedStoreErrs)
	}
	c.reportf("store: %d injected failures tolerated (save.fail %d, load.err %d), healthz %q",
		injectedStoreErrs, counts[fault.StoreSaveFail].Fired, counts[fault.StoreLoadErr].Fired, wantHealth)

	// Invariant — no leaked slots or in-flight cells, and the recovered
	// panic count matches the schedule exactly.
	injectedPanics := counts[fault.ServeHandlerPanic].Fired + counts[fault.ServeRunPanic].Fired
	checkMetrics(c, client.HTTPClient, base, map[string]int{
		"cwserve_panics_recovered_total": injectedPanics,
		"cwserve_slots_busy":             0,
		"cwserve_inflight_cells":         0,
	})
	c.reportf("panics: %d injected (handler %d, run-path %d), all recovered, no slots or cells leaked",
		injectedPanics, counts[fault.ServeHandlerPanic].Fired, counts[fault.ServeRunPanic].Fired)

	// Drain the daemon the way cwserve does on SIGTERM.
	sv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	err = httpSrv.Shutdown(shutdownCtx)
	cancel()
	if err != nil {
		c.violate("drain: %v", err)
	}
	sv.Close()

	// Invariant — reboot-safe: a fresh fault-free daemon warms from
	// whatever the faulted store persisted (torn entries degrade to
	// misses) and answers every cell byte-identically, recomputing the
	// casualties.
	disk2, err := store.Open(dir)
	if err != nil {
		c.violate("reopening the faulted store: %v", err)
	} else {
		runner2 := core.NewRunnerWith(core.RunnerOptions{Workers: 1, Store: disk2})
		warmed := runner2.Warm(ctx, universe, opts)
		rebootOK := 0
		for _, e := range universe {
			res, err := runner2.Run(ctx, e, opts)
			if err != nil {
				c.violate("reboot run %s: %v", e, err)
				continue
			}
			body, err := json.Marshal(res)
			if err != nil {
				c.violate("reboot run %s: %v", e, err)
				continue
			}
			if string(body) != string(canonical[core.FingerprintKey(e, opts)]) {
				c.violate("reboot run %s: body differs from the fault-free reference", e)
				continue
			}
			rebootOK++
		}
		c.reportf("reboot: warmed %d of %d cells from the faulted store, %d byte-identical after recompute",
			warmed, len(universe), rebootOK)
	}

	// Invariant — no goroutine leaks: everything the campaign started is
	// gone once the daemon has drained and idle connections are closed.
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	leaked := -1
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= goroutines0+2 {
			leaked = 0
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if leaked != 0 {
		c.violate("goroutines leaked: %d at start, %d after drain", goroutines0, runtime.NumGoroutine())
	}
	c.reportf("goroutines: stable across the campaign")

	// The injected-fault tally (fired counts only: passage counts on the
	// serve sites race the cancelled first sweep's tail, so they go to
	// stderr with the rest of the non-deterministic detail).
	c.reportf("faults injected:")
	for _, line := range firedLines(counts) {
		c.reportf("  %s", line)
	}
	for _, line := range firedLines(sweepPlan.Counts()) {
		c.reportf("  sweep-phase %s", line)
	}
	logf("fault schedule detail:\n%s%s", plan.Summary(), sweepPlan.Summary())
	logf("campaign in %v", time.Since(start).Round(time.Millisecond))

	// The verdict. Everything above is derived from the seed alone, so a
	// same-seed rerun must print this report byte-for-byte.
	fmt.Printf("cwchaos: campaign seed=%d cells=%d requests=%d sweeps=%d\n", seed, len(universe), len(seq), sweeps)
	fmt.Print(c.report.String())
	for _, v := range c.violations {
		fmt.Printf("cwchaos: VIOLATION: %s\n", v)
	}
	fmt.Printf("cwchaos: %d invariant violations\n", len(c.violations))
	if len(c.violations) > 0 {
		return 1
	}
	return 0
}

// probe fetches a small endpoint through the (possibly faulty) client,
// retrying past injected faults, and returns the trimmed 200 body.
func probe(hc *http.Client, url string) (string, error) {
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		resp, err := hc.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
			continue
		}
		return strings.TrimSpace(string(body)), nil
	}
	return "", fmt.Errorf("after 8 attempts: %w", lastErr)
}

// checkMetrics asserts exact values of un-labeled gauges/counters,
// re-probing briefly so the cancelled sweep's tail can finish releasing
// its slot before the zero-gauge assertions are judged.
func checkMetrics(c *campaign, hc *http.Client, base string, want map[string]int) {
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	var bad []string
	for deadline := time.Now().Add(2 * time.Second); ; {
		body, err := probe(hc, base+"/metrics")
		if err != nil {
			c.violate("metrics probe: %v", err)
			return
		}
		bad = bad[:0]
		for _, name := range names {
			got, ok := metricValue(body, name)
			if !ok || got != fmt.Sprint(want[name]) {
				bad = append(bad, fmt.Sprintf("%s = %s, want %d", name, got, want[name]))
			}
		}
		if len(bad) == 0 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, b := range bad {
		c.violate("metric %s", b)
	}
}

// metricValue extracts one un-labeled metric from a Prometheus text
// exposition.
func metricValue(body, name string) (string, bool) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" "), true
		}
	}
	return "", false
}

// firedLines renders sorted, deterministic per-site injection counts.
func firedLines(counts map[fault.Site]fault.Count) []string {
	sites := make([]string, 0, len(counts))
	for site := range counts {
		sites = append(sites, string(site))
	}
	sort.Strings(sites)
	lines := make([]string, 0, len(sites))
	for _, site := range sites {
		lines = append(lines, fmt.Sprintf("%s x%d", site, counts[fault.Site(site)].Fired))
	}
	return lines
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwchaos: "+format+"\n", args...)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwchaos: "+format+"\n", args...)
	os.Exit(1)
}
