// Command cwlint runs the repo-specific static checks (internal/lint) over
// package directories:
//
//	cwlint ./...              # whole tree (the CI lint job)
//	cwlint ./internal/sim     # one package
//	cwlint -list              # describe the analyzers
//
// Checks: hotpathalloc (no allocation-inducing constructs in
// //cwlint:hotpath functions), pooledreturn (never alias a pooled
// []Segment trace buffer into a result), mapiter (never write output while
// ranging over a map). Findings print as file:line:col: [analyzer] message
// and a non-empty report exits 1. Test files and testdata directories are
// out of scope; suppress an individual line with a //cwlint:ignore comment
// stating why.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"configwall/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the registered analyzers")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expand(args)
	if err != nil {
		fatal("%v", err)
	}
	if len(dirs) == 0 {
		fatal("no Go packages match %s", strings.Join(args, " "))
	}

	loader, err := lint.NewLoader(dirs[0])
	if err != nil {
		fatal("%v", err)
	}
	failed := false
	for _, dir := range dirs {
		p, err := loader.LoadDir(dir)
		if err != nil {
			fatal("%v", err)
		}
		for _, f := range lint.Lint(p) {
			fmt.Println(f)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// expand resolves the argument patterns to package directories: a trailing
// /... walks the tree (skipping testdata, hidden and vendor directories); a
// plain path names one directory. Only directories containing at least one
// non-test Go file qualify.
func expand(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) error {
		ok, err := hasGoFiles(dir)
		if err != nil || !ok || seen[dir] {
			return err
		}
		seen[dir] = true
		dirs = append(dirs, dir)
		return nil
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "/...")
		if root == "" || root == "."+string(filepath.Separator) {
			root = "."
		}
		if !recursive {
			if err := add(filepath.Clean(arg)); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return add(path)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwlint: "+format+"\n", args...)
	os.Exit(1)
}
