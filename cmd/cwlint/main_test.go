package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestExpandSkipsTestdata: the /... walk must find real packages but never
// descend into testdata (the lint fixtures fail by design) or hidden
// directories.
func TestExpandSkipsTestdata(t *testing.T) {
	dirs, err := expand([]string{"../../internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	foundLint := false
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("expand descended into testdata: %s", d)
		}
		if filepath.Base(d) == "lint" {
			foundLint = true
		}
	}
	if !foundLint {
		t.Fatalf("expand missed the lint package itself: %v", dirs)
	}
}

// TestExpandSingleDir: a plain path names exactly one package directory.
func TestExpandSingleDir(t *testing.T) {
	dirs, err := expand([]string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != "." {
		t.Fatalf("expand(.) = %v", dirs)
	}
}

// TestExpandIgnoresGoFileFreeDirs: a directory without non-test Go files
// contributes nothing.
func TestExpandIgnoresGoFileFreeDirs(t *testing.T) {
	dirs, err := expand([]string{t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 0 {
		t.Fatalf("expected no packages in an empty dir, got %v", dirs)
	}
}
