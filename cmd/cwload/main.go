// Command cwload is the serving benchmark client: it replays a
// zipf-skewed experiment request mix against a running cwserve daemon —
// the traffic shape of configuration-search clients, which hammer the hot
// cells of the measurement cache with heavily overlapping queries — and
// reports throughput and latency percentiles.
//
//	cwload -url http://127.0.0.1:8080 -n 10000 -clients 32
//	cwload -url http://127.0.0.1:8080 -targets opengemm -pipelines base,all -sizes 16,32
//	cwload -url http://127.0.0.1:8080 -n 2000 -out loadgen-report.txt
//
// The universe of distinct cells is the cross product of -targets,
// -workloads, -pipelines and -sizes (targets default to every target the
// server registers, fetched from /v1/registry). With -verify (the
// default) every repeated response is checked byte-identical to the first
// response for its cell — the memoized simulator is deterministic, so any
// difference is a serving bug. Exit status is non-zero on any transport
// error, non-200 response or byte-identity mismatch.
//
// With -retry-429 (the default) workers behave like well-behaved
// configuration-search clients under backpressure: a 429 response is not
// an error — the worker sleeps the server's Retry-After hint (capped by
// -retry-max-delay) and re-sends, up to -retry-max attempts per request.
// The latency summary reports how many backpressure retries the run
// absorbed; only requests still failing after the retries count as
// errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"configwall/internal/core"
	"configwall/internal/serve"
	"configwall/internal/sim"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the cwserve daemon")
	n := flag.Int("n", 10000, "total requests")
	clients := flag.Int("clients", 32, "concurrent client workers")
	targets := flag.String("targets", "", "comma-separated target mix (empty = every target from /v1/registry)")
	workloads := flag.String("workloads", core.WorkloadMatmul, "comma-separated workload mix")
	pipelines := flag.String("pipelines", "base,all", "comma-separated pipeline mix")
	sizes := flag.String("sizes", "16,32", "comma-separated size mix")
	engineName := flag.String("engine", "ref", "simulator engine ("+strings.Join(sim.EngineNames(), "|")+")")
	zipfS := flag.Float64("zipf", 1.4, "zipf skew parameter (> 1; larger = hotter hot set)")
	seed := flag.Int64("seed", 1, "request-mix seed")
	verify := flag.Bool("verify", true, "assert responses for one cell are byte-identical")
	retry429 := flag.Bool("retry-429", true, "honor 429 Retry-After with capped backoff instead of counting an error")
	retryMax := flag.Int("retry-max", 4, "max attempts per request under 429 backpressure")
	retryMaxDelay := flag.Duration("retry-max-delay", 2*time.Second, "cap on each backpressure backoff sleep")
	out := flag.String("out", "", "also write the report to this file")
	flag.Parse()

	engine, err := sim.EngineByName(*engineName)
	if err != nil {
		fatal("%v", err)
	}

	ctx := context.Background()
	client := serve.NewClient(*url)

	targetList := splitCSV(*targets)
	if len(targetList) == 0 {
		info, err := client.Registry(ctx)
		if err != nil {
			fatal("fetching /v1/registry from %s: %v", *url, err)
		}
		targetList = info.Targets
	}
	pipeNames := splitCSV(*pipelines)
	pipes := make([]core.Pipeline, len(pipeNames))
	for i, pn := range pipeNames {
		if pipes[i], err = core.PipelineByName(pn); err != nil {
			fatal("%v", err)
		}
	}
	sizeList, err := parseInts(*sizes)
	if err != nil {
		fatal("bad -sizes: %v", err)
	}

	exps := core.Sweep(targetList, splitCSV(*workloads), pipes, sizeList)
	if len(exps) == 0 {
		fatal("empty experiment universe")
	}

	fmt.Printf("cwload: %d requests, %d clients, %d-cell universe, zipf s=%g seed=%d against %s\n",
		*n, *clients, len(exps), *zipfS, *seed, *url)
	rep, err := serve.LoadGen(ctx, client, serve.LoadGenOptions{
		Experiments:   exps,
		Options:       core.RunOptions{Engine: engine},
		Requests:      *n,
		Clients:       *clients,
		ZipfS:         *zipfS,
		Seed:          *seed,
		Verify:        *verify,
		Retry429:      *retry429,
		RetryMax:      *retryMax,
		RetryMaxDelay: *retryMaxDelay,
	})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(rep.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(rep.String()), 0o644); err != nil {
			fatal("writing %s: %v", *out, err)
		}
	}
	if rep.Errors > 0 || rep.Mismatched > 0 {
		fatal("FAIL: %d errors, %d byte-identity mismatches", rep.Errors, rep.Mismatched)
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitCSV(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwload: "+format+"\n", args...)
	os.Exit(1)
}
