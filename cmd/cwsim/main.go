// Command cwsim compiles one tiled-matmul workload and runs it on the
// co-simulator, printing the measured counters, the roofline position and
// optionally the execution timeline or the generated assembly:
//
//	cwsim -target opengemm -pipeline all -n 64 -timeline
//	cwsim -target gemmini -pipeline base -n 128 -asm
package main

import (
	"flag"
	"fmt"
	"os"

	"configwall/internal/codegen"
	"configwall/internal/core"
	"configwall/internal/ir"
	"configwall/internal/trace"
)

func main() {
	targetName := flag.String("target", "opengemm", "accelerator platform: gemmini | opengemm")
	pipelineName := flag.String("pipeline", "all", "pipeline: base | dedup | overlap | all")
	n := flag.Int("n", 64, "square matrix size")
	timeline := flag.Bool("timeline", false, "print the execution timeline (Figure 7 style)")
	width := flag.Int("timeline-width", 100, "timeline width in characters")
	asm := flag.Bool("asm", false, "print the compiled host program")
	irDump := flag.Bool("ir", false, "print the optimized IR before codegen")
	stats := flag.Bool("stats", false, "print per-pass statistics")
	flag.Parse()

	var target core.Target
	switch *targetName {
	case "gemmini":
		target = core.GemminiTarget()
	case "opengemm":
		target = core.OpenGeMMTarget()
	default:
		fatal("unknown target %q", *targetName)
	}

	var pipeline core.Pipeline
	switch *pipelineName {
	case "base":
		pipeline = core.Baseline
	case "dedup":
		pipeline = core.DedupOnly
	case "overlap":
		pipeline = core.OverlapOnly
	case "all":
		pipeline = core.AllOptimizations
	default:
		fatal("unknown pipeline %q", *pipelineName)
	}

	if *asm || *irDump {
		m, err := target.BuildMatmul(*n)
		if err != nil {
			fatal("%v", err)
		}
		pm := target.PassPipeline(pipeline)
		if err := pm.Run(m); err != nil {
			fatal("%v", err)
		}
		if *irDump {
			fmt.Print(ir.PrintModule(m))
		}
		if *asm {
			prog, _, err := codegen.Compile(m, "main", codegen.Options{StaticBase: 32 << 20})
			if err != nil {
				fatal("%v", err)
			}
			fmt.Print(prog.Disassemble())
		}
		return
	}

	res, err := core.RunTiledMatmul(target, pipeline, *n, core.RunOptions{RecordTrace: *timeline})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("target            %s (%s configuration)\n", res.Target, scheme(target))
	fmt.Printf("pipeline          %s\n", res.Pipeline)
	fmt.Printf("matrix size       %d x %d (ops = %d)\n", res.N, res.N, res.AccelOps)
	fmt.Printf("total cycles      %d\n", res.Cycles)
	fmt.Printf("performance       %.1f ops/cycle (%.1f%% of %g peak)\n", res.OpsPerCycle(), 100*res.Utilization(), res.PeakOps)
	fmt.Printf("host instructions %d (%d configuration writes)\n", res.HostInstrs, res.ConfigInstrs)
	fmt.Printf("config bytes      %d\n", res.ConfigBytes)
	fmt.Printf("I_OC              %.1f ops/byte\n", res.MeasuredIOC())
	fmt.Printf("BW_config (raw)   %.3f bytes/cycle\n", res.RawConfigBW())
	fmt.Printf("BW_config (eff.)  %.3f bytes/cycle\n", res.EffectiveConfigBW())
	fmt.Printf("Eq.3 attainable   %.1f ops/cycle\n", res.AttainableEq3())
	fmt.Printf("host stall cycles %d, accel busy cycles %d\n", res.StallCycles, res.AccelBusyCycles)
	fmt.Printf("verified          %v\n", res.Verified)
	if *stats {
		fmt.Println("\nper-pass statistics:")
		for _, line := range res.PassStats {
			fmt.Println("  " + line)
		}
	}
	if *timeline {
		fmt.Println()
		fmt.Print(trace.Timeline(res.Trace, 0, res.Cycles, *width))
	}
}

func scheme(t core.Target) string {
	if t.Concurrent {
		return "concurrent"
	}
	return "sequential"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwsim: "+format+"\n", args...)
	os.Exit(1)
}
