// Command cwsim compiles one registered workload and runs it on the
// co-simulator, printing the measured counters, the roofline position and
// optionally the execution timeline or the generated assembly:
//
//	cwsim -target opengemm -pipeline all -n 64 -timeline
//	cwsim -target gemmini -workload rectmm -pipeline base -n 128 -asm
//	cwsim -target opengemm -n 256 -engine fast       # predecoded fast engine
//	cwsim -target opengemm -n 256 -engine compiled   # block-compiled engine
//	cwsim -list
//
// Targets and workloads resolve through the experiment registry, so
// platforms registered by external code are addressable by name.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"configwall/internal/codegen"
	"configwall/internal/core"
	"configwall/internal/ir"
	"configwall/internal/sim"
	"configwall/internal/trace"
)

func main() {
	targetName := flag.String("target", "opengemm", "accelerator platform ("+strings.Join(core.TargetNames(), "|")+")")
	workloadName := flag.String("workload", core.WorkloadMatmul, "workload ("+strings.Join(core.WorkloadNames(), "|")+")")
	pipelineName := flag.String("pipeline", "all", "pipeline: base | dedup | overlap | all")
	engineName := flag.String("engine", "ref", "simulator engine ("+strings.Join(sim.EngineNames(), "|")+"); identical results, different speed")
	n := flag.Int("n", 64, "workload sweep size")
	timeline := flag.Bool("timeline", false, "print the execution timeline (Figure 7 style)")
	width := flag.Int("timeline-width", 100, "timeline width in characters")
	asm := flag.Bool("asm", false, "print the compiled host program")
	irDump := flag.Bool("ir", false, "print the optimized IR before codegen")
	stats := flag.Bool("stats", false, "print per-pass statistics")
	list := flag.Bool("list", false, "list registered targets and workloads")
	flag.Parse()

	if *list {
		fmt.Println("targets:")
		for _, name := range core.TargetNames() {
			t, _ := core.LookupTarget(name)
			fmt.Printf("  %-12s %s configuration, %g ops/cycle peak\n", name, scheme(t), t.PeakOps)
		}
		fmt.Println("workloads:")
		for _, name := range core.WorkloadNames() {
			w, _ := core.LookupWorkload(name)
			fmt.Printf("  %-12s %s\n", name, w.Description)
		}
		return
	}

	target, err := core.LookupTarget(*targetName)
	if err != nil {
		fatal("%v", err)
	}
	wl, err := core.LookupWorkload(*workloadName)
	if err != nil {
		fatal("%v", err)
	}
	pipeline, err := core.PipelineByName(*pipelineName)
	if err != nil {
		fatal("%v", err)
	}
	engine, err := sim.EngineByName(*engineName)
	if err != nil {
		fatal("%v", err)
	}

	if *asm || *irDump {
		inst, err := wl.Build(target, *n)
		if err != nil {
			fatal("%v", err)
		}
		pm := target.PassPipeline(pipeline)
		if err := pm.Run(inst.Module); err != nil {
			fatal("%v", err)
		}
		if *irDump {
			fmt.Print(ir.PrintModule(inst.Module))
		}
		if *asm {
			prog, _, err := codegen.Compile(inst.Module, "main", codegen.Options{StaticBase: 32 << 20})
			if err != nil {
				fatal("%v", err)
			}
			fmt.Print(prog.Disassemble())
		}
		return
	}

	start := time.Now()
	res, err := core.Run(target, wl, pipeline, *n, core.RunOptions{RecordTrace: *timeline, Engine: engine})
	elapsed := time.Since(start)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("target            %s (%s configuration)\n", res.Target, scheme(target))
	fmt.Printf("workload          %s\n", res.Workload)
	fmt.Printf("pipeline          %s\n", res.Pipeline)
	fmt.Printf("engine            %s (%.2fM host instrs/sec incl. compile)\n",
		engine, float64(res.HostInstrs)/elapsed.Seconds()/1e6)
	fmt.Printf("sweep size        %d (ops = %d)\n", res.N, res.AccelOps)
	fmt.Printf("total cycles      %d\n", res.Cycles)
	fmt.Printf("performance       %.1f ops/cycle (%.1f%% of %g peak)\n", res.OpsPerCycle(), 100*res.Utilization(), res.PeakOps)
	fmt.Printf("host instructions %d (%d configuration writes)\n", res.HostInstrs, res.ConfigInstrs)
	fmt.Printf("config bytes      %d\n", res.ConfigBytes)
	fmt.Printf("I_OC              %.1f ops/byte\n", res.MeasuredIOC())
	fmt.Printf("BW_config (raw)   %.3f bytes/cycle\n", res.RawConfigBW())
	fmt.Printf("BW_config (eff.)  %.3f bytes/cycle\n", res.EffectiveConfigBW())
	fmt.Printf("Eq.3 attainable   %.1f ops/cycle\n", res.AttainableEq3())
	fmt.Printf("host stall cycles %d, accel busy cycles %d\n", res.StallCycles, res.AccelBusyCycles)
	fmt.Printf("verified          %v\n", res.Verified)
	if *stats {
		fmt.Println("\nper-pass statistics:")
		for _, line := range res.PassStats {
			fmt.Println("  " + line)
		}
	}
	if *timeline {
		fmt.Println()
		fmt.Print(trace.Timeline(res.Trace, 0, res.Cycles, *width))
	}
}

func scheme(t core.Target) string {
	if t.Concurrent {
		return "concurrent"
	}
	return "sequential"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwsim: "+format+"\n", args...)
	os.Exit(1)
}
