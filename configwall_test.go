package configwall_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"configwall"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	target := configwall.OpenGeMMTarget()
	res, err := configwall.RunTiledMatmul(target, configwall.AllOptimizations, 32, configwall.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("run not verified")
	}
	if res.OpsPerCycle() <= 0 || res.Utilization() <= 0 || res.Utilization() > 1 {
		t.Errorf("implausible performance: %f ops/cycle, %f utilization", res.OpsPerCycle(), res.Utilization())
	}
}

// TestPublicStoreAndShardAPI drives the persistence surface end to end
// through the exported names: open a disk store, shard a sweep across two
// store-sharing runners, then serve the full sweep from the store with
// zero recomputation.
func TestPublicStoreAndShardAPI(t *testing.T) {
	opts := configwall.RunOptions{SkipVerify: true}
	exps := configwall.SweepExperiments(
		[]string{"opengemm"}, []string{configwall.WorkloadMatmul},
		configwall.Pipelines, []int{8, 16})
	dir := t.TempDir()

	for i := 0; i < 2; i++ {
		st, err := configwall.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		part, err := configwall.ShardExperiments(exps, i, 2)
		if err != nil {
			t.Fatal(err)
		}
		r := configwall.NewRunnerWith(configwall.RunnerOptions{Store: st, MaxCells: 4})
		if _, err := r.RunAll(context.Background(), part, opts); err != nil {
			t.Fatal(err)
		}
	}

	st, err := configwall.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := configwall.NewRunnerWith(configwall.RunnerOptions{Store: st})
	results, err := r.RunAll(context.Background(), exps, opts)
	if err != nil {
		t.Fatal(err)
	}
	stats := r.Snapshot()
	if stats.Runs != 0 {
		t.Errorf("full sweep after sharded precompute recomputed %d cells, want 0 (%s)", stats.Runs, stats)
	}
	if int(stats.StoreHits) != len(exps) {
		t.Errorf("StoreHits = %d, want %d", stats.StoreHits, len(exps))
	}
	for i, res := range results {
		if res.Cycles == 0 {
			t.Errorf("result %d (%s) is empty", i, exps[i])
		}
	}
}

func TestPublicRooflineHelpers(t *testing.T) {
	// The paper's §4.6 numbers through the public API.
	util := configwall.Sequential(512, 16.0/9.0, 204.8) / 512
	if util < 0.41 || util > 0.42 {
		t.Errorf("Sequential utilization = %f, want ~0.4156", util)
	}
	if configwall.Concurrent(512, 2, 1e9) != 512 {
		t.Error("Concurrent must saturate at peak")
	}
	bw := configwall.EffectiveConfigBW(2560, 775*3, 160*3)
	if bw < 0.91 || bw > 0.92 {
		t.Errorf("EffectiveConfigBW = %f, want ~0.913", bw)
	}
	if g := configwall.Geomean([]float64{1, 4}); g != 2 {
		t.Errorf("Geomean = %f, want 2", g)
	}
}

// TestSemanticPreservationProperty is the repository-level safety property:
// for random (target, pipeline, size) triples, the compiled-and-simulated
// program always matches the golden CPU matmul. The verification runs
// inside RunTiledMatmul; an optimization bug surfaces as an error.
func TestSemanticPreservationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	targets := []configwall.Target{configwall.GemminiTarget(), configwall.OpenGeMMTarget()}
	prop := func(targetSel, pipeSel, sizeSel uint8) bool {
		target := targets[int(targetSel)%2]
		pipeline := configwall.Pipelines[int(pipeSel)%len(configwall.Pipelines)]
		var n int
		if target.Name == "gemmini" {
			n = []int{16, 32, 48}[int(sizeSel)%3]
		} else {
			n = []int{8, 16, 24, 40}[int(sizeSel)%4]
		}
		res, err := configwall.RunTiledMatmul(target, pipeline, n, configwall.RunOptions{})
		if err != nil {
			t.Logf("%s/%s/%d: %v", target.Name, pipeline, n, err)
			return false
		}
		return res.Verified
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}

func TestPipelineEnumeration(t *testing.T) {
	if len(configwall.Pipelines) != 4 {
		t.Fatalf("Pipelines = %d entries, want 4", len(configwall.Pipelines))
	}
	names := map[string]bool{}
	for _, p := range configwall.Pipelines {
		names[p.String()] = true
	}
	for _, want := range []string{"base", "dedup", "overlap", "all"} {
		if !names[want] {
			t.Errorf("missing pipeline %q", want)
		}
	}
}

// TestPublicServeAPI drives the serving surface end to end through the
// exported names: boot a server over a runner, query it with the client,
// replay a short load-generation burst, and enumerate the backing store.
func TestPublicServeAPI(t *testing.T) {
	dir := t.TempDir()
	st, err := configwall.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := configwall.NewRunnerWith(configwall.RunnerOptions{Store: st})
	sv, err := configwall.NewServer(configwall.ServerOptions{Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv)
	defer func() { ts.Close(); sv.Close() }()

	c := configwall.NewServeClient(ts.URL)
	exps := configwall.SweepExperiments(
		[]string{"opengemm"}, []string{configwall.WorkloadMatmul},
		[]configwall.Pipeline{configwall.Baseline, configwall.AllOptimizations}, []int{8})
	rep, err := configwall.LoadGen(context.Background(), c, configwall.LoadGenOptions{
		Experiments: exps, Requests: 200, Clients: 4, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Mismatched != 0 {
		t.Fatalf("loadgen: %d errors, %d mismatches\n%s", rep.Errors, rep.Mismatched, rep)
	}
	if stats := runner.Snapshot(); stats.Runs != uint64(rep.Distinct) {
		t.Errorf("Runs = %d for %d distinct cells", stats.Runs, rep.Distinct)
	}

	// The store behind the server is enumerable through the public API.
	var entries []configwall.StoreEntry
	if err := st.Each(func(e configwall.StoreEntry) error {
		entries = append(entries, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(entries) != rep.Distinct {
		t.Errorf("store holds %d entries, want %d (one per distinct cell)", len(entries), rep.Distinct)
	}
}
